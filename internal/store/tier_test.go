package store

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dsrhaslab/dio-go/internal/durable"
	"github.com/dsrhaslab/dio-go/internal/telemetry"
)

// The tiered matrix: segment eviction under a retention policy, time-range
// pruning, leveled compaction, retention drops, and every crash point the
// new machinery adds — each recovery compared against a never-crashed
// control, exactly like crash_test.go does for the flat layout.

// longRetention keeps the 2^60-era crash fixtures (~2006) alive while still
// enabling eviction-on-flush, so tests build real cold segments without the
// retention sweep dropping them.
const longRetention = 200_000 * time.Hour

// ingestRoundNoUBQ is ingestRound without the update-by-query step: under a
// retention policy, cold rows are out of update reach (DESIGN.md §15), so
// tests that compare against an in-memory control — where everything stays
// hot — must not rewrite rows the tiered store has already evicted.
func ingestRoundNoUBQ(t *testing.T, st *Store, round int) {
	t.Helper()
	ctx := context.Background()
	if err := st.BulkEvents(ctx, crashIndex, crashEvents(round)); err != nil {
		t.Fatalf("round %d: bulk events: %v", round, err)
	}
	if err := st.Bulk(ctx, crashIndex, crashDocs(round)); err != nil {
		t.Fatalf("round %d: bulk docs: %v", round, err)
	}
}

// controlReplay rebuilds the reference state in memory: the listed rounds in
// order, with ingestRound's update-by-query applied after the rounds named
// in ubqAfter.
func controlReplay(t *testing.T, rounds, ubqAfter []int) *Store {
	t.Helper()
	ctx := context.Background()
	st := New()
	for _, r := range rounds {
		ingestRoundNoUBQ(t, st, r)
		for _, u := range ubqAfter {
			if u != r {
				continue
			}
			_, err := st.UpdateByQuery(ctx, crashIndex, Term(FieldSyscall, "openat"), func(d Document) bool {
				d[FieldFilePath] = "/resolved/by/round"
				return true
			})
			if err != nil {
				t.Fatalf("control round %d: update-by-query: %v", r, err)
			}
		}
	}
	return st
}

func manifestOf(t *testing.T, dir string) durable.Manifest {
	t.Helper()
	m, ok, err := durable.LoadManifest(indexDir(dir))
	if err != nil || !ok {
		t.Fatalf("load manifest: ok=%v err=%v", ok, err)
	}
	return m
}

func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(indexDir(dir))
	if err != nil {
		t.Fatalf("read index dir: %v", err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "seg-") {
			out = append(out, e.Name())
		}
	}
	return out
}

// TestSegmentTieredFingerprint is the tiered base case: every flush under a
// retention policy evicts the memtable into an immutable cold segment, and a
// store whose rows live entirely in cold segments must be indistinguishable
// — typed search, document search, aggregations, counts — from an in-memory
// store holding the same rows, before and after a reopen.
func TestSegmentTieredFingerprint(t *testing.T) {
	dir := t.TempDir()
	st := openDurable(t, dir, WithRetention(longRetention), WithShards(4))
	const rounds = 6
	var all []int
	for r := 0; r < rounds; r++ {
		ingestRoundNoUBQ(t, st, r)
		if err := st.Snapshot(); err != nil {
			t.Fatalf("snapshot round %d: %v", r, err)
		}
		all = append(all, r)
	}
	want := fingerprint(t, controlReplay(t, all, nil))
	if got := fingerprint(t, st); got != want {
		t.Fatalf("tiered state diverged from in-memory control")
	}

	ix, _ := st.GetIndex(crashIndex)
	rowsPerRound := len(crashEvents(0)) + len(crashDocs(0))
	if cold := ix.coldRows.Load(); cold != int64(rounds*rowsPerRound) {
		t.Fatalf("cold rows = %d, want %d (all rows evicted)", cold, rounds*rowsPerRound)
	}
	hot := 0
	for _, sh := range ix.shards {
		hot += sh.len()
	}
	if hot != 0 {
		t.Fatalf("shard memory holds %d rows after eviction, want 0", hot)
	}
	if m := manifestOf(t, dir); len(m.Segments) != rounds {
		t.Fatalf("manifest lists %d segments, want %d", len(m.Segments), rounds)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	re := openDurable(t, dir, WithRetention(longRetention))
	defer re.Close()
	if got := fingerprint(t, re); got != want {
		t.Fatalf("tiered state diverged after reopen")
	}
	// The tier keeps accepting writes: a new round lands hot and is visible
	// alongside the cold segments.
	ingestRoundNoUBQ(t, re, rounds)
	if got, want := fingerprint(t, re), fingerprint(t, controlReplay(t, append(all, rounds), nil)); got != want {
		t.Fatalf("mixed cold+hot state diverged from control")
	}
}

// TestSegmentPrunedSearchOpensOnlyOverlapping checks the query planner's
// time-range pruning: with rows spread over many time-disjoint segments, a
// narrow time_enter_ns range must open only the overlapping segment — with
// the skip/open decisions visible on the pruning counters and /metrics — and
// must return exactly what a full scan returns.
func TestSegmentPrunedSearchOpensOnlyOverlapping(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	st := openDurable(t, dir, WithRetention(longRetention), WithTelemetry(reg), WithQueryCache(0))
	defer st.Close()
	const rounds = 8
	for r := 0; r < rounds; r++ {
		ingestRoundNoUBQ(t, st, r)
		if err := st.Snapshot(); err != nil {
			t.Fatalf("snapshot round %d: %v", r, err)
		}
	}
	ctx := context.Background()
	// Round 3's window: rounds are 1ms apart, this range spans 20µs.
	lo := float64(int64(1<<60) + 3*1_000_000)
	hi := lo + 20_000
	req := SearchRequest{
		Query: Must(Term(FieldSession, "crash"), RangeBetween(FieldTimeEnter, lo, hi)),
		Size:  -1,
	}
	pruned := reg.Counter(telemetry.MetricSegmentsPruned, "")
	opened := reg.Counter(telemetry.MetricSegmentsOpened, "")

	resp, err := st.Search(ctx, crashIndex, req)
	if err != nil {
		t.Fatalf("pruned search: %v", err)
	}
	rowsPerRound := len(crashEvents(0)) + len(crashDocs(0))
	if len(resp.Hits) != rowsPerRound {
		t.Fatalf("pruned search returned %d hits, want %d (round 3)", len(resp.Hits), rowsPerRound)
	}
	if p, o := pruned.Value(), opened.Value(); p != rounds-1 || o != 1 {
		t.Fatalf("pruning counters: pruned=%d opened=%d, want %d/1", p, o, rounds-1)
	}

	// The differential: the same query with pruning disabled opens every
	// segment and must return the identical result set.
	ix, _ := st.GetIndex(crashIndex)
	ix.SetSegmentPruning(false)
	full, err := st.Search(ctx, crashIndex, req)
	if err != nil {
		t.Fatalf("full-scan search: %v", err)
	}
	ix.SetSegmentPruning(true)
	if !reflect.DeepEqual(resp.Hits, full.Hits) || resp.Total != full.Total {
		t.Fatalf("pruned and full-scan results diverged")
	}
	if o := opened.Value(); o != 1+rounds {
		t.Fatalf("full scan opened %d segments total, want %d", o-1, rounds)
	}

	// Counts take the same pruned path.
	n, err := st.Count(ctx, crashIndex, Must(RangeBetween(FieldTimeEnter, lo, hi)))
	if err != nil {
		t.Fatalf("pruned count: %v", err)
	}
	if n != rowsPerRound {
		t.Fatalf("pruned count = %d, want %d", n, rowsPerRound)
	}

	// The decisions are operationally visible.
	srv := httptest.NewServer(NewServer(st))
	defer srv.Close()
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, name := range []string{telemetry.MetricSegmentsPruned, telemetry.MetricSegmentsOpened} {
		if !strings.Contains(string(body), name) {
			t.Fatalf("/metrics does not expose %s", name)
		}
	}
}

// TestSegmentCompactionPreservesState checks the leveled merge: compaction
// must shrink the segment list without changing one observable bit, remove
// its input files, and leave a manifest recovery rebuilds the same state
// from.
func TestSegmentCompactionPreservesState(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	st := openDurable(t, dir, WithRetention(longRetention), WithTelemetry(reg), WithShards(4))
	const rounds = 8
	var all []int
	for r := 0; r < rounds; r++ {
		ingestRoundNoUBQ(t, st, r)
		if err := st.Snapshot(); err != nil {
			t.Fatalf("snapshot round %d: %v", r, err)
		}
		all = append(all, r)
	}
	want := fingerprint(t, st)
	if err := st.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	// 8 level-0 segments merge 4-at-a-time into two level-1 segments.
	m := manifestOf(t, dir)
	if len(m.Segments) != 2 {
		t.Fatalf("post-compaction manifest lists %d segments, want 2", len(m.Segments))
	}
	for _, sm := range m.Segments {
		if sm.Level != 1 {
			t.Fatalf("post-compaction segment seq %d at level %d, want 1", sm.Seq, sm.Level)
		}
	}
	if n := reg.Counter(telemetry.MetricCompactions, "").Value(); n != 2 {
		t.Fatalf("compaction counter = %d, want 2", n)
	}
	if files := segmentFiles(t, dir); len(files) != 2 {
		t.Fatalf("disk holds %d segment files after compaction, want 2: %v", len(files), files)
	}
	if got := fingerprint(t, st); got != want {
		t.Fatalf("compaction changed observable state")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	re := openDurable(t, dir, WithRetention(longRetention))
	defer re.Close()
	if got := fingerprint(t, re); got != want {
		t.Fatalf("recovery from compacted segments diverged")
	}
	if got, ctrl := fingerprint(t, re), fingerprint(t, controlReplay(t, all, nil)); got != ctrl {
		t.Fatalf("compacted state diverged from in-memory control")
	}
}

// TestDurableRetentionUpgrade covers enabling -retention on an existing data
// directory — the path where pending rewrites matter most: rows rewritten by
// update-by-query before the upgrade live only in segments afterwards, and
// the manifest's rewrite overlay must keep serving their post-rewrite values
// through cold search, compaction folding, and reopen.
func TestDurableRetentionUpgrade(t *testing.T) {
	dir := t.TempDir()
	st := openDurable(t, dir, WithShards(4)) // flat layout, no retention
	ingestRound(t, st, 0)
	if err := st.Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	ingestRound(t, st, 1) // odd round: update-by-query rewrites flushed rows 0-11 too
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	want := fingerprint(t, controlStore(t, 2))

	re := openDurable(t, dir, WithRetention(longRetention))
	if got := fingerprint(t, re); got != want {
		t.Fatalf("retention-upgraded recovery diverged (pre-upgrade rewrites lost?)")
	}
	ix, _ := re.GetIndex(crashIndex)
	ix.dur.pendMu.Lock()
	np := len(ix.dur.pending)
	ix.dur.pendMu.Unlock()
	if np != 2 {
		t.Fatalf("recovered pending rewrites = %d, want 2 (round 0's openat rows)", np)
	}

	// Grow more segments, then compact: the merge folds the overlay into the
	// rewritten rows and retires the pending entries.
	rounds, ubq := []int{0, 1}, []int{1}
	for r := 2; r <= 5; r++ {
		ingestRoundNoUBQ(t, re, r)
		if err := re.Snapshot(); err != nil {
			t.Fatalf("snapshot round %d: %v", r, err)
		}
		rounds = append(rounds, r)
	}
	want = fingerprint(t, controlReplay(t, rounds, ubq))
	if got := fingerprint(t, re); got != want {
		t.Fatalf("mixed-era tiered state diverged from control")
	}
	if err := re.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	ix.dur.pendMu.Lock()
	np = len(ix.dur.pending)
	ix.dur.pendMu.Unlock()
	if np != 0 {
		t.Fatalf("pending rewrites after folding compaction = %d, want 0", np)
	}
	if got := fingerprint(t, re); got != want {
		t.Fatalf("folding compaction changed observable state")
	}
	if err := re.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	re2 := openDurable(t, dir, WithRetention(longRetention))
	defer re2.Close()
	if got := fingerprint(t, re2); got != want {
		t.Fatalf("post-folding recovery diverged")
	}
}

// TestCrashCompactionBeforeManifestCommit kills the compactor between
// writing its merged output and committing the manifest: the output file
// exists but nothing references it. Recovery must delete the orphan, keep
// every segment the manifest does reference, and restore the exact
// pre-crash state.
func TestCrashCompactionBeforeManifestCommit(t *testing.T) {
	dir := t.TempDir()
	st := openDurable(t, dir, WithRetention(longRetention))
	var all []int
	for r := 0; r < 5; r++ {
		ingestRoundNoUBQ(t, st, r)
		if err := st.Snapshot(); err != nil {
			t.Fatalf("snapshot round %d: %v", r, err)
		}
		all = append(all, r)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The kill point: compaction claimed the next output sequence, wrote the
	// merged segment, and died before CommitManifest.
	m := manifestOf(t, dir)
	orphan := filepath.Join(indexDir(dir), durable.SegmentName(m.SegmentSeq))
	if err := os.WriteFile(orphan, []byte("uncommitted merge output"), 0o644); err != nil {
		t.Fatalf("plant orphan segment: %v", err)
	}

	re := openDurable(t, dir, WithRetention(longRetention))
	defer re.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("uncommitted compaction output survived recovery")
	}
	// The bug this guards against: orphan cleanup running with the wrong
	// manifest view and deleting segments the real manifest references.
	for _, sm := range m.Segments {
		if _, err := os.Stat(filepath.Join(indexDir(dir), durable.SegmentName(sm.Seq))); err != nil {
			t.Fatalf("referenced segment seq %d deleted by orphan cleanup: %v", sm.Seq, err)
		}
	}
	if got, want := fingerprint(t, re), fingerprint(t, controlReplay(t, all, nil)); got != want {
		t.Fatalf("recovered state != never-crashed control")
	}
}

// TestCrashTornSegmentWrite kills the store mid-write of a segment (the
// temporary exists, the rename never happened) and mid-rotation (an orphan
// WAL generation). Recovery must remove both and recover cleanly.
func TestCrashTornSegmentWrite(t *testing.T) {
	dir := t.TempDir()
	st := openDurable(t, dir, WithRetention(longRetention))
	var all []int
	for r := 0; r < 4; r++ {
		ingestRoundNoUBQ(t, st, r)
		if err := st.Snapshot(); err != nil {
			t.Fatalf("snapshot round %d: %v", r, err)
		}
		all = append(all, r)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	torn := filepath.Join(indexDir(dir), durable.SegmentName(9)+".tmp")
	if err := os.WriteFile(torn, []byte("torn half-written segment"), 0o644); err != nil {
		t.Fatalf("plant torn segment: %v", err)
	}
	orphanWAL := walFile(dir, 42)
	if err := os.WriteFile(orphanWAL, nil, 0o644); err != nil {
		t.Fatalf("plant orphan wal: %v", err)
	}

	re := openDurable(t, dir, WithRetention(longRetention))
	defer re.Close()
	for _, f := range []string{torn, orphanWAL} {
		if _, err := os.Stat(f); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived recovery", filepath.Base(f))
		}
	}
	if got, want := fingerprint(t, re), fingerprint(t, controlReplay(t, all, nil)); got != want {
		t.Fatalf("recovered state != never-crashed control")
	}
}

// TestManifestMissingSegmentFails: a manifest that references a segment file
// that does not exist is unrecoverable corruption, and recovery must fail
// loudly instead of silently serving partial data.
func TestManifestMissingSegmentFails(t *testing.T) {
	dir := t.TempDir()
	st := openDurable(t, dir, WithRetention(longRetention))
	for r := 0; r < 3; r++ {
		ingestRoundNoUBQ(t, st, r)
		if err := st.Snapshot(); err != nil {
			t.Fatalf("snapshot round %d: %v", r, err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	m := manifestOf(t, dir)
	victim := filepath.Join(indexDir(dir), durable.SegmentName(m.Segments[1].Seq))
	if err := os.Remove(victim); err != nil {
		t.Fatalf("remove referenced segment: %v", err)
	}

	if _, err := Open(WithDataDir(dir), WithRetention(longRetention)); err == nil {
		t.Fatalf("Open succeeded with a manifest-referenced segment missing")
	}
}

// TestRecoveryTieredConservation generalizes the recovery conservation
// invariant to the leveled layout: recovered rows == sum of all manifest
// segment rows + replayed WAL rows.
func TestRecoveryTieredConservation(t *testing.T) {
	dir := t.TempDir()
	st := openDurable(t, dir, WithRetention(longRetention))
	ingestRoundNoUBQ(t, st, 0)
	if err := st.Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	ingestRoundNoUBQ(t, st, 1)
	if err := st.Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	ingestRoundNoUBQ(t, st, 2) // stays in the WAL
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Close's final snapshot flushed round 2 as a third segment; tear that
	// commit back to the mid-WAL state by restoring the round-2 journal...
	// simpler: recompute expectations from the manifest itself.
	m := manifestOf(t, dir)

	reg := telemetry.NewRegistry()
	re := openDurable(t, dir, WithRetention(longRetention), WithTelemetry(reg))
	defer re.Close()
	n, err := re.Count(context.Background(), crashIndex, MatchAll())
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	replayed := int(reg.Counter(telemetry.MetricReplayedEvents, "").Value())
	if int64(n) != m.SegmentRows()+int64(replayed) {
		t.Fatalf("conservation violated: %d rows != %d segment rows + %d replayed",
			n, m.SegmentRows(), replayed)
	}
	rowsPerRound := len(crashEvents(0)) + len(crashDocs(0))
	if n != 3*rowsPerRound {
		t.Fatalf("recovered %d rows, want %d", n, 3*rowsPerRound)
	}
}

// TestCrashFollowerBootstrapMultiSegment checks full-state replication from
// a tiered primary: the bootstrap streams cold segments (pending rewrites
// substituted) plus the memtable, the follower rebuilds them as its own cold
// segment + journal, and the result is fingerprint-identical — including
// after the follower restarts from its own disk.
func TestCrashFollowerBootstrapMultiSegment(t *testing.T) {
	ctx := context.Background()
	pdir, fdir := t.TempDir(), t.TempDir()

	// Primary: a flat-era segment with pre-upgrade rewrites, upgraded to
	// retention, grown two more cold segments, plus a hot memtable round.
	p := openDurable(t, pdir, WithShards(4))
	ingestRound(t, p, 0)
	if err := p.Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	ingestRound(t, p, 1)
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	p = openDurable(t, pdir, WithRetention(longRetention))
	defer p.Close()
	ingestRoundNoUBQ(t, p, 2)
	if err := p.Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	ingestRoundNoUBQ(t, p, 3) // hot rows

	snap, err := p.ReplBootstrapFrames(crashIndex, 5)
	if err != nil {
		t.Fatalf("bootstrap frames: %v", err)
	}
	rowsPerRound := int64(len(crashEvents(0)) + len(crashDocs(0)))
	if snap.Base != 3*rowsPerRound {
		t.Fatalf("snapshot base = %d, want %d (three cold rounds)", snap.Base, 3*rowsPerRound)
	}
	// Frames must split cleanly at the cold/hot boundary for the follower to
	// route them whole.
	for i := 1; i < len(snap.Frames); i++ {
		prev, curf := snap.Frames[i-1], snap.Frames[i]
		if prev.StartRow < snap.Base && curf.StartRow >= snap.Base && curf.StartRow != snap.Base {
			t.Fatalf("frame %d starts at %d, want exactly base %d", i, curf.StartRow, snap.Base)
		}
	}

	f := openDurable(t, fdir, WithRetention(longRetention), WithShards(4))
	f.SetFollower()
	if err := f.ReplBootstrap(ctx, crashIndex, snap); err != nil {
		t.Fatalf("follower bootstrap: %v", err)
	}
	want := fingerprint(t, p)
	if got := fingerprint(t, f); got != want {
		t.Fatalf("bootstrapped follower diverged from primary")
	}
	if got, ctrl := want, fingerprint(t, controlReplay(t, []int{0, 1, 2, 3}, []int{1})); got != ctrl {
		t.Fatalf("primary itself diverged from in-memory control")
	}
	if err := f.Close(); err != nil {
		t.Fatalf("follower close: %v", err)
	}

	// The bootstrapped state must be durable on the follower's own disk.
	f2 := openDurable(t, fdir, WithRetention(longRetention))
	defer f2.Close()
	if got := fingerprint(t, f2); got != want {
		t.Fatalf("follower state diverged after restart")
	}

	// An in-memory follower has nowhere to put cold segments: a tiered
	// snapshot must be refused, not silently mangled.
	mem := New()
	mem.SetFollower()
	if err := mem.ReplBootstrap(ctx, crashIndex, snap); err == nil {
		t.Fatalf("in-memory follower accepted a tiered (base>0) snapshot")
	}
}

// TestCursorPagingAcrossCompaction is the live-compaction differential:
// paging an index with search_after while the compactor merges segments
// underneath must reproduce the monolithic result exactly — compaction moves
// rows between files but never changes global ids.
func TestCursorPagingAcrossCompaction(t *testing.T) {
	dir := t.TempDir()
	st := openDurable(t, dir, WithRetention(longRetention), WithQueryCache(0))
	defer st.Close()
	for r := 0; r < 8; r++ {
		ingestRoundNoUBQ(t, st, r)
		if err := st.Snapshot(); err != nil {
			t.Fatalf("snapshot round %d: %v", r, err)
		}
	}
	ingestRoundNoUBQ(t, st, 8) // hot tail

	unsortedReq := SearchRequest{Query: Term(FieldSession, "crash")}
	sortedReq := SearchRequest{
		Query: Term(FieldSession, "crash"),
		Sort:  []SortField{{Field: FieldRetVal}, {Field: FieldTimeEnter, Desc: true}},
	}
	ctx := context.Background()
	baseUnsorted, err := st.Search(ctx, crashIndex, SearchRequest{Query: unsortedReq.Query, Size: -1})
	if err != nil {
		t.Fatalf("monolithic search: %v", err)
	}
	baseSorted, err := st.Search(ctx, crashIndex, SearchRequest{Query: sortedReq.Query, Sort: sortedReq.Sort, Size: -1})
	if err != nil {
		t.Fatalf("monolithic sorted search: %v", err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := st.Compact(); err != nil {
				t.Errorf("background compact: %v", err)
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	pagedUnsorted := pageAll(t, st, crashIndex, unsortedReq, 7)
	pagedSorted := pageAll(t, st, crashIndex, sortedReq, 7)
	close(done)
	wg.Wait()

	if !reflect.DeepEqual(pagedUnsorted, baseUnsorted.Hits) {
		t.Fatalf("unsorted paging under live compaction diverged: %d vs %d hits",
			len(pagedUnsorted), len(baseUnsorted.Hits))
	}
	if !reflect.DeepEqual(pagedSorted, baseSorted.Hits) {
		t.Fatalf("sorted paging under live compaction diverged: %d vs %d hits",
			len(pagedSorted), len(baseSorted.Hits))
	}
}

// retentionDocs builds batchSize documents stamped at the given time.
func retentionDocs(at int64, batch int, tag string) []Document {
	docs := make([]Document, 0, batch)
	for i := 0; i < batch; i++ {
		docs = append(docs, Document{
			FieldSession: "exp", FieldSyscall: "read",
			FieldRetVal: int64(i), FieldTimeEnter: at + int64(i),
			"batch_tag": tag,
		})
	}
	return docs
}

// TestCursorExpiredAfterRetention: an unsorted search_after cursor that
// names rows the retention sweep has dropped must fail with the typed
// ErrCursorExpired — locally, over HTTP as 410 Gone, and through the
// failover client without triggering a spurious failover — while sorted
// cursors and fresh walks keep working.
func TestCursorExpiredAfterRetention(t *testing.T) {
	dir := t.TempDir()
	st := openDurable(t, dir, WithRetention(time.Hour), WithQueryCache(0))
	defer st.Close()
	ctx := context.Background()
	now := time.Now().UnixNano()
	stale := now - 2*int64(time.Hour)
	if err := st.Bulk(ctx, crashIndex, retentionDocs(stale, 12, "old")); err != nil {
		t.Fatalf("bulk old: %v", err)
	}
	if err := st.Snapshot(); err != nil {
		t.Fatalf("snapshot old: %v", err)
	}
	if err := st.Bulk(ctx, crashIndex, retentionDocs(now, 12, "new")); err != nil {
		t.Fatalf("bulk new: %v", err)
	}
	if err := st.Snapshot(); err != nil {
		t.Fatalf("snapshot new: %v", err)
	}

	page1, err := st.Search(ctx, crashIndex, SearchRequest{Query: MatchAll(), Size: 5})
	if err != nil {
		t.Fatalf("page 1: %v", err)
	}
	if page1.NextAfter == nil || page1.Total != 24 {
		t.Fatalf("page 1: total=%d next=%v", page1.Total, page1.NextAfter)
	}
	sorted1, err := st.Search(ctx, crashIndex, SearchRequest{
		Query: MatchAll(), Size: 5, Sort: []SortField{{Field: FieldTimeEnter}},
	})
	if err != nil {
		t.Fatalf("sorted page 1: %v", err)
	}

	if err := st.Compact(); err != nil { // retention drops the stale segment
		t.Fatalf("compact: %v", err)
	}
	n, err := st.Count(ctx, crashIndex, MatchAll())
	if err != nil || n != 12 {
		t.Fatalf("count after retention = %d, %v; want 12", n, err)
	}

	// The stale positional cursor fails loudly.
	_, err = st.Search(ctx, crashIndex, SearchRequest{Query: MatchAll(), Size: 5, SearchAfter: page1.NextAfter})
	if !errors.Is(err, ErrCursorExpired) {
		t.Fatalf("stale cursor error = %v, want ErrCursorExpired", err)
	}
	// A sorted cursor resumes by key: it sees fewer rows, never an error.
	rest, err := st.Search(ctx, crashIndex, SearchRequest{
		Query: MatchAll(), Size: -1, Sort: []SortField{{Field: FieldTimeEnter}},
		SearchAfter: sorted1.NextAfter,
	})
	if err != nil {
		t.Fatalf("sorted resume: %v", err)
	}
	if len(sorted1.Hits)+len(rest.Hits) < 12 {
		t.Fatalf("sorted resume lost surviving rows: %d + %d", len(sorted1.Hits), len(rest.Hits))
	}
	// A fresh walk pages the surviving rows completely.
	if hits := pageAll(t, st, crashIndex, SearchRequest{Query: MatchAll()}, 5); len(hits) != 12 {
		t.Fatalf("fresh paged walk returned %d rows, want 12", len(hits))
	}

	// Over HTTP the same failure is a typed 410 Gone, and the failover
	// client returns it untouched instead of probing for a new primary.
	srv := httptest.NewServer(NewServer(st))
	defer srv.Close()
	fc, err := NewFailoverClient(NewClient(srv.URL, WithAPIPrefix("/v1")))
	if err != nil {
		t.Fatalf("failover client: %v", err)
	}
	_, err = fc.Search(ctx, crashIndex, SearchRequest{Query: MatchAll(), Size: 5, SearchAfter: page1.NextAfter})
	if !errors.Is(err, ErrCursorExpired) {
		t.Fatalf("HTTP stale cursor error = %v, want ErrCursorExpired via 410", err)
	}
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusGone {
		t.Fatalf("HTTP stale cursor status = %v, want 410", err)
	}
	if he.Temporary() {
		t.Fatalf("410 Gone classified as temporary (would be retried)")
	}
	if fc.Switches() != 0 {
		t.Fatalf("cursor expiry triggered %d failovers, want 0", fc.Switches())
	}
}

// TestQueryCacheRetentionDifferential: the epoch-keyed query cache must not
// serve pre-drop responses after a retention sweep changes visible data —
// the mutation-vs-cache differential for the new mutation source.
func TestQueryCacheRetentionDifferential(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	st := openDurable(t, dir, WithRetention(time.Hour), WithQueryCache(64), WithTelemetry(reg))
	defer st.Close()
	ctx := context.Background()
	now := time.Now().UnixNano()
	stale := now - 2*int64(time.Hour)
	if err := st.Bulk(ctx, crashIndex, retentionDocs(stale, 12, "old")); err != nil {
		t.Fatalf("bulk old: %v", err)
	}
	if err := st.Snapshot(); err != nil {
		t.Fatalf("snapshot old: %v", err)
	}
	fresh := retentionDocs(now, 12, "new")
	if err := st.Bulk(ctx, crashIndex, fresh); err != nil {
		t.Fatalf("bulk new: %v", err)
	}
	if err := st.Snapshot(); err != nil {
		t.Fatalf("snapshot new: %v", err)
	}

	req := SearchRequest{
		Query: Term(FieldSession, "exp"),
		Size:  100,
		Aggs: map[string]Agg{
			"timeline": {DateHistogram: &DateHistogramAgg{Field: FieldTimeEnter, IntervalNS: int64(time.Hour)}},
		},
	}
	r1, err := st.Search(ctx, crashIndex, req)
	if err != nil {
		t.Fatalf("search 1: %v", err)
	}
	r2, err := st.Search(ctx, crashIndex, req)
	if err != nil {
		t.Fatalf("search 2: %v", err)
	}
	if !reflect.DeepEqual(r1, r2) || r1.Total != 24 {
		t.Fatalf("pre-drop responses diverged or total=%d != 24", r1.Total)
	}
	if h := reg.Counter(telemetry.MetricQueryCacheHits, "").Value(); h == 0 {
		t.Fatalf("repeat query not served from cache — differential proves nothing")
	}

	if err := st.Compact(); err != nil { // retention drop bumps the epoch
		t.Fatalf("compact: %v", err)
	}
	r3, err := st.Search(ctx, crashIndex, req)
	if err != nil {
		t.Fatalf("search after drop: %v", err)
	}
	if r3.Total != 12 {
		t.Fatalf("post-drop total = %d, want 12 (stale cached response served?)", r3.Total)
	}
	// The differential oracle: a fresh store holding only the surviving rows.
	ctrl := New()
	if err := ctrl.Bulk(ctx, crashIndex, retentionDocs(now, 12, "new")); err != nil {
		t.Fatalf("control bulk: %v", err)
	}
	want, err := ctrl.Search(ctx, crashIndex, req)
	if err != nil {
		t.Fatalf("control search: %v", err)
	}
	if !reflect.DeepEqual(r3.Hits, want.Hits) || !reflect.DeepEqual(r3.Aggs, want.Aggs) {
		t.Fatalf("post-drop response diverged from surviving-rows control")
	}
	// And the post-drop response is itself cacheable and stable.
	r4, err := st.Search(ctx, crashIndex, req)
	if err != nil {
		t.Fatalf("search 4: %v", err)
	}
	if !reflect.DeepEqual(r3, r4) {
		t.Fatalf("post-drop cached response diverged")
	}
}

// TestRetentionBoundsMemory is the bounded-footprint check: under sustained
// ingest where every batch ages out, the flush-evict-drop cycle must keep
// shard memory empty, the segment list near-zero, and the store fully
// usable — the mechanism that bounds RSS for long-running deployments.
func TestRetentionBoundsMemory(t *testing.T) {
	dir := t.TempDir()
	st := openDurable(t, dir, WithRetention(time.Hour), WithShards(4))
	defer st.Close()
	ctx := context.Background()
	now := time.Now().UnixNano()
	stale := now - 2*int64(time.Hour)
	const cycles, batch = 25, 200
	for c := 0; c < cycles; c++ {
		if err := st.Bulk(ctx, crashIndex, retentionDocs(stale+int64(c), batch, fmt.Sprintf("c%d", c))); err != nil {
			t.Fatalf("cycle %d: bulk: %v", c, err)
		}
		if err := st.Snapshot(); err != nil {
			t.Fatalf("cycle %d: snapshot: %v", c, err)
		}
		if err := st.Compact(); err != nil {
			t.Fatalf("cycle %d: compact: %v", c, err)
		}
		ix, _ := st.GetIndex(crashIndex)
		hot := 0
		for _, sh := range ix.shards {
			hot += sh.len()
		}
		if hot != 0 {
			t.Fatalf("cycle %d: %d rows still hot after eviction", c, hot)
		}
		if files := segmentFiles(t, dir); len(files) > 2 {
			t.Fatalf("cycle %d: %d segment files on disk, want <= 2 (unbounded growth)", c, len(files))
		}
	}
	n, err := st.Count(ctx, crashIndex, MatchAll())
	if err != nil || n != 0 {
		t.Fatalf("count after %d aged-out cycles = %d, %v; want 0", cycles, n, err)
	}
	if dropped := manifestOf(t, dir).RetentionFloor; dropped != int64(cycles*batch) {
		t.Fatalf("retention floor = %d, want %d", dropped, cycles*batch)
	}
	// The store keeps working: a live batch is fully visible.
	if err := st.Bulk(ctx, crashIndex, retentionDocs(now, batch, "live")); err != nil {
		t.Fatalf("live bulk: %v", err)
	}
	if n, err := st.Count(ctx, crashIndex, MatchAll()); err != nil || n != batch {
		t.Fatalf("live count = %d, %v; want %d", n, err, batch)
	}
}

// TestUpdateBeyondRetentionTyped409 pins the hot-only-under-retention
// contract for mutation-by-query: once a retention policy has evicted rows
// into cold segments, UpdateByQuery and Correlate are refused with
// ErrUpdateBeyondRetention instead of silently rewriting only the hot subset
// (DESIGN.md §15), and the v1 API surfaces the refusal as a 409 whose body
// carries the machine-readable reason — which the remote client unwraps back
// to the same sentinel local callers see.
func TestUpdateBeyondRetentionTyped409(t *testing.T) {
	dir := t.TempDir()
	st := openDurable(t, dir, WithRetention(longRetention), WithShards(4))
	defer st.Close()
	ctx := context.Background()

	// Before eviction the update path works as on any durable store.
	ingestRoundNoUBQ(t, st, 0)
	if _, err := st.UpdateByQuery(ctx, crashIndex, Term(FieldSyscall, "openat"), func(d Document) bool {
		d[FieldFilePath] = "/still/hot"
		return true
	}); err != nil {
		t.Fatalf("update-by-query before eviction: %v", err)
	}

	// Snapshot evicts the memtable into a cold segment; from here on the
	// update scan could no longer reach every matched row.
	if err := st.Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	ix, _ := st.GetIndex(crashIndex)
	if ix.coldRows.Load() == 0 {
		t.Fatal("expected cold rows after snapshot under retention")
	}

	if _, err := st.UpdateByQuery(ctx, crashIndex, MatchAll(), func(Document) bool { return true }); !errors.Is(err, ErrUpdateBeyondRetention) {
		t.Fatalf("update-by-query over cold rows: %v, want ErrUpdateBeyondRetention", err)
	}
	if _, err := st.Correlate(ctx, crashIndex, ""); !errors.Is(err, ErrUpdateBeyondRetention) {
		t.Fatalf("correlate over cold rows: %v, want ErrUpdateBeyondRetention", err)
	}

	// Reads are unaffected: the rows are cold, not gone.
	if n, err := st.Count(ctx, crashIndex, MatchAll()); err != nil || n == 0 {
		t.Fatalf("count after refusal = %d, %v; want all rows readable", n, err)
	}

	// The same refusal over the v1 wire: typed 409 + reason, unwrapping to
	// the sentinel on the client side.
	srv := httptest.NewServer(NewServer(st))
	defer srv.Close()
	c := NewClient(srv.URL, WithAPIPrefix("/v1"))
	_, err := c.Correlate(ctx, crashIndex, "")
	if !errors.Is(err, ErrUpdateBeyondRetention) {
		t.Fatalf("remote correlate: %v, want ErrUpdateBeyondRetention", err)
	}
	var he *HTTPError
	if !errors.As(err, &he) {
		t.Fatalf("remote correlate error is not *HTTPError: %v", err)
	}
	if he.Status != http.StatusConflict || he.Reason != ReasonUpdateBeyondRetention {
		t.Fatalf("remote correlate: status=%d reason=%q, want 409 %q", he.Status, he.Reason, ReasonUpdateBeyondRetention)
	}
}
