package store

import (
	"context"
	"runtime"
	"sync"
)

// shardSem bounds the number of goroutines the store spawns for shard
// fan-out across all concurrent searches. When the pool is saturated the
// work runs inline on the caller, so fan-out degrades to serial execution
// instead of queueing unboundedly.
var shardSem = make(chan struct{}, maxInt(1, runtime.GOMAXPROCS(0)))

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// forEachShardCtx runs fn(0..n-1), in parallel when worker slots are free,
// with cancellation: ctx is consulted
// before dispatching each shard, so a cancelled request stops claiming
// cores at shard granularity (shards already running finish — fn holds
// locks and must not be abandoned mid-flight). Returns ctx.Err() when any
// shard was skipped; dispatched shards are always awaited first.
func forEachShardCtx(ctx context.Context, n int, fn func(int)) error {
	if n <= 1 {
		if err := ctx.Err(); err != nil {
			return err
		}
		if n == 1 {
			fn(0)
		}
		return nil
	}
	var wg sync.WaitGroup
	var err error
	for i := 0; i < n; i++ {
		if err = ctx.Err(); err != nil {
			break
		}
		select {
		case shardSem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer func() {
					<-shardSem
					wg.Done()
				}()
				fn(i)
			}(i)
		default:
			fn(i)
		}
	}
	wg.Wait()
	return err
}
