package store

import (
	"runtime"
	"sync"
)

// shardSem bounds the number of goroutines the store spawns for shard
// fan-out across all concurrent searches. When the pool is saturated the
// work runs inline on the caller, so fan-out degrades to serial execution
// instead of queueing unboundedly.
var shardSem = make(chan struct{}, maxInt(1, runtime.GOMAXPROCS(0)))

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// forEachShard runs fn(0..n-1), in parallel when worker slots are free.
func forEachShard(n int, fn func(int)) {
	if n <= 1 {
		if n == 1 {
			fn(0)
		}
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		select {
		case shardSem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer func() {
					<-shardSem
					wg.Done()
				}()
				fn(i)
			}(i)
		default:
			fn(i)
		}
	}
	wg.Wait()
}
