package store

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/dsrhaslab/dio-go/internal/event"
	"github.com/dsrhaslab/dio-go/internal/telemetry"
)

// Backend is the interface the tracer and visualizer program against: it is
// satisfied both by the in-process *Store and by *Client talking to a
// remote Server, mirroring the paper's deployment choice of co-located or
// dedicated analysis servers (§II-F). All methods are context-first: the
// context carries cancellation from the caller (an HTTP request, a per-
// attempt delivery deadline) into shard fan-out or the wire request.
//
// Bulk implementations must not retain the docs slice after returning: the
// tracer's drain workers recycle batch buffers through a pool. (Retaining
// the Document maps themselves is fine; the in-process store does.)
type Backend interface {
	Bulk(ctx context.Context, index string, docs []Document) error
	Search(ctx context.Context, index string, req SearchRequest) (SearchResponse, error)
	Count(ctx context.Context, index string, q Query) (int, error)
	Correlate(ctx context.Context, index, session string) (CorrelationResult, error)
}

var (
	_ Backend = (*Store)(nil)
	_ Backend = (*Client)(nil)
)

// Correlate runs the file-path correlation algorithm on the named index,
// recording the run in the store's telemetry registry. On a durable store
// the resulting file_path rewrites are journaled like any update-by-query.
func (s *Store) Correlate(ctx context.Context, index, session string) (CorrelationResult, error) {
	// Correlation rewrites file_path on matched rows — a mutation, so a
	// follower rejects it like any direct write.
	if s.Role() == RoleFollower {
		return CorrelationResult{}, ErrReadOnlyFollower
	}
	ix, ok := s.GetIndex(index)
	if !ok {
		return CorrelationResult{}, fmt.Errorf("index %q not found", index)
	}
	// The rewrite step scans hot shard memory only; with retention-evicted
	// cold rows present it would tag a subset and silently skip the rest, so
	// the pass is refused up front (the typed 409 path, DESIGN.md §15).
	if ix.coldRows.Load() > 0 {
		return CorrelationResult{}, ErrUpdateBeyondRetention
	}
	var res CorrelationResult
	var err error
	s.tm.corrRuns.Inc()
	observeNS(s.tm.corrNS, func() {
		res, err = correlateFilePaths(ctx, ix, session, &s.tm)
	})
	s.tm.corrTags.Add(uint64(res.TagsResolved))
	s.tm.corrUpd.Add(uint64(res.EventsUpdated))
	s.tm.corrUnres.Add(uint64(res.EventsUnresolved))
	return res, err
}

// Server exposes the store over HTTP with an Elasticsearch-flavoured API.
// Every route is mounted twice: under the versioned /v1/ prefix (the
// canonical surface) and unprefixed (the legacy alias older clients still
// speak):
//
//	POST   /v1/{index}/_bulk       NDJSON action/document pairs, or a binary event frame
//	POST   /v1/{index}/_search     SearchRequest JSON body
//	POST   /v1/{index}/_count      optional Query JSON body
//	POST   /v1/{index}/_correlate  ?session=NAME
//	GET    /v1/{index}/_stats      doc and shard counts
//	GET    /v1/_cat/indices        list index names
//	GET    /v1/_health             liveness probe for clients and breakers
//	GET    /v1/metrics             Prometheus-style text exposition
//	DELETE /v1/{index}             drop an index
//
// Request contexts propagate into the store, so a client that disconnects
// mid-search stops the shard fan-out. Known alias limitation: an index
// literally named "v1" is reachable only through the versioned prefix
// (/v1/v1/_search), since the unprefixed path space cedes /v1/ to it.
type Server struct {
	store *Store
	mux   *http.ServeMux
	// noBinary disables the binary bulk frame (POST _bulk with
	// Content-Type application/x-dio-events.v1 answers 415), emulating an
	// NDJSON-only server for mixed-version tests and rollback drills.
	noBinary atomic.Bool

	mu    sync.Mutex
	extra []*telemetry.Registry
	// ops are extension routes for /{index}/_op paths the core server does
	// not own, registered by packages layered above the store (the
	// diagnosis engine mounts _diagnose/_dfg/_diff here) so the store
	// stays free of upward dependencies. Registered ops ride the dual
	// /v1+legacy mounting like every built-in route.
	ops map[string]OpHandler
}

// OpHandler serves one registered /{index}/_op route.
type OpHandler func(w http.ResponseWriter, r *http.Request, index string)

// HandleOp registers h for POST/GET /{index}/op (and /v1/{index}/op).
// Built-in operations cannot be overridden; registration of a duplicate
// or built-in name panics, as route wiring is a programming error.
func (s *Server) HandleOp(op string, h OpHandler) {
	switch op {
	case "_bulk", "_search", "_scatter", "_count", "_correlate", "_stats":
		panic(fmt.Sprintf("store: HandleOp(%q) would shadow a built-in operation", op))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ops == nil {
		s.ops = make(map[string]OpHandler)
	}
	if _, dup := s.ops[op]; dup {
		panic(fmt.Sprintf("store: HandleOp(%q) registered twice", op))
	}
	s.ops[op] = h
}

// Store returns the wrapped store, for extension packages that serve
// additional routes over the same state.
func (s *Server) Store() *Store { return s.store }

var _ http.Handler = (*Server)(nil)

// NewServer wraps st in an HTTP handler.
func NewServer(st *Store) *Server {
	s := &Server{store: st, mux: http.NewServeMux()}
	// One route set, mounted twice: the versioned surface strips its prefix
	// exactly once and dispatches into the same inner mux as the legacy
	// alias, so /v1/<anything> and /<anything> stay one handler set by
	// construction — and the prefix cannot nest (/v1/v1/_search reaches the
	// inner mux as /v1/_search, i.e. the index literally named "v1").
	inner := http.NewServeMux()
	inner.HandleFunc("/_cat/indices", s.handleCatIndices)
	inner.HandleFunc("/_health", s.handleHealth)
	inner.HandleFunc("/metrics", s.handleMetrics)
	inner.HandleFunc("/_repl/status", s.handleReplStatus)
	inner.HandleFunc("/_repl/apply", s.handleReplApply)
	inner.HandleFunc("/_repl/bootstrap", s.handleReplBootstrap)
	inner.HandleFunc("/_repl/promote", s.handleReplPromote)
	inner.HandleFunc("/", s.handleIndexOps)
	s.mux.Handle("/", inner)
	s.mux.Handle("/v1/", http.StripPrefix("/v1", inner))
	return s
}

// SetBinaryProtocol enables or disables the binary bulk frame (enabled by
// default). Disabled, the server rejects binary frames with 415, which
// clients answer by latching onto the NDJSON fallback.
func (s *Server) SetBinaryProtocol(v bool) { s.noBinary.Store(!v) }

// Pools for the binary bulk path: request-body read buffers and decoded
// event batches are recycled across requests, so the steady-state ingest
// path's allocations are the interned strings alone.
var (
	serverReadPool = sync.Pool{New: func() any {
		return bytes.NewBuffer(make([]byte, 0, 64*1024))
	}}
	serverEventsPool = sync.Pool{New: func() any {
		b := make([]event.Event, 0, 512)
		return &b
	}}
)

// ExposeTelemetry attaches an additional registry to GET /metrics. A
// co-located tracer hands over its pipeline registry (ebpf, core,
// resilience stages) so one scrape covers the whole pipeline alongside the
// store's own instruments.
func (s *Server) ExposeTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.extra {
		if r == reg {
			return
		}
	}
	s.extra = append(s.extra, reg)
}

// handleMetrics serves the store registry plus every attached registry in
// the Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.mu.Lock()
	regs := append([]*telemetry.Registry{s.store.Telemetry()}, s.extra...)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, reg := range regs {
		reg.WriteText(w)
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleCatIndices(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.Indices())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, s.store.Health())
}

// handleReplStatus reports the node's role and per-index sequence positions.
func (s *Server) handleReplStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, s.store.ReplStatus())
}

// replApplyRequest is the POST /_repl/apply body.
type replApplyRequest struct {
	Index  string      `json:"index"`
	From   int64       `json:"from"`
	Frames []ReplFrame `json:"frames"`
}

// writeReplError maps replication errors onto statuses the shipper
// dispatches on: 403 for role mismatches (this node is not a follower), 409
// with the applied sequence for out-of-order pushes (the shipper resyncs
// instead of retrying), 500 otherwise. Both 4xx shapes are non-temporary
// under HTTPError's classification, so the resilience ladder fails fast.
func writeReplError(w http.ResponseWriter, applied int64, err error) {
	var seqErr *ReplSeqError
	switch {
	case errors.As(err, &seqErr):
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": err.Error(), "applied": applied,
		})
	case errors.Is(err, ErrNotFollower):
		httpError(w, http.StatusForbidden, "%v", err)
	default:
		httpError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) handleReplApply(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req replApplyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad repl apply request: %v", err)
		return
	}
	applied, err := s.store.ReplApply(r.Context(), req.Index, req.From, req.Frames)
	if err != nil {
		writeReplError(w, applied, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int64{"applied": applied})
}

// replBootstrapRequest is the POST /_repl/bootstrap body: a full-state
// snapshot of one index, aligned to primary sequence seq. The embedded
// ReplSnapshot flattens into the JSON object, so pre-tiered senders (no
// base/floor keys) decode as a Base==0 snapshot and take the legacy path.
type replBootstrapRequest struct {
	Index string `json:"index"`
	ReplSnapshot
}

func (s *Server) handleReplBootstrap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req replBootstrapRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad repl bootstrap request: %v", err)
		return
	}
	if err := s.store.ReplBootstrap(r.Context(), req.Index, req.ReplSnapshot); err != nil {
		writeReplError(w, 0, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int64{"applied": req.Seq})
}

// handleReplPromote flips a follower to primary (idempotent on a primary).
func (s *Server) handleReplPromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	s.store.Promote()
	writeJSON(w, http.StatusOK, map[string]string{"role": s.store.Role().String()})
}

func (s *Server) handleIndexOps(w http.ResponseWriter, r *http.Request) {
	parts := strings.Split(strings.Trim(r.URL.Path, "/"), "/")
	switch {
	case len(parts) == 1 && parts[0] != "" && r.Method == http.MethodDelete:
		s.store.DeleteIndex(parts[0])
		writeJSON(w, http.StatusOK, map[string]bool{"acknowledged": true})
	case len(parts) == 2:
		index, op := parts[0], parts[1]
		switch op {
		case "_bulk":
			s.handleBulk(w, r, index)
		case "_search":
			s.handleSearch(w, r, index)
		case "_scatter":
			s.handleScatter(w, r, index)
		case "_count":
			s.handleCount(w, r, index)
		case "_correlate":
			s.handleCorrelate(w, r, index)
		case "_stats":
			s.handleStats(w, r, index)
		default:
			s.mu.Lock()
			h := s.ops[op]
			s.mu.Unlock()
			if h != nil {
				h(w, r, index)
				return
			}
			httpError(w, http.StatusNotFound, "unknown operation %q", op)
		}
	default:
		httpError(w, http.StatusNotFound, "not found")
	}
}

// handleBulk consumes either the version-1 binary event frame (typed fast
// path: ring → wire → shard storage with no Document anywhere) or
// Elasticsearch-style NDJSON — an action line (ignored beyond validation)
// followed by a document line, repeated — selected by Content-Type.
func (s *Server) handleBulk(w http.ResponseWriter, r *http.Request, index string) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, event.ContentTypeBinaryV1) {
		s.handleBulkBinary(w, r, index)
		return
	}
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64*1024), 8*1024*1024)
	var docs []Document
	expectDoc := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if !expectDoc {
			// action line, e.g. {"index":{}}
			expectDoc = true
			continue
		}
		var d Document
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			httpError(w, http.StatusBadRequest, "bad document: %v", err)
			return
		}
		docs = append(docs, d)
		expectDoc = false
	}
	if err := sc.Err(); err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if err := s.store.Bulk(r.Context(), index, docs); err != nil {
		if errors.Is(err, ErrReadOnlyFollower) {
			// 409, not 5xx: retrying against this node cannot succeed, the
			// client must redirect to the primary.
			httpError(w, http.StatusConflict, "bulk: %v", err)
			return
		}
		httpError(w, http.StatusInternalServerError, "bulk: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"items": len(docs)})
}

// handleBulkBinary decodes a binary event frame into a pooled batch and
// indexes it through the typed fast path.
func (s *Server) handleBulkBinary(w http.ResponseWriter, r *http.Request, index string) {
	if s.noBinary.Load() {
		// 415 tells the client this server only speaks NDJSON; the client
		// re-sends the same batch as documents and stops probing.
		httpError(w, http.StatusUnsupportedMediaType,
			"binary event frames not supported; use NDJSON")
		return
	}
	buf := serverReadPool.Get().(*bytes.Buffer)
	buf.Reset()
	// When replication is armed the frame's buffer is surrendered to the
	// tail (cheaper than having journalApply clone it). The pool gets a
	// replacement pre-sized to the surrendered buffer's capacity, so the
	// next request reads its body without any doubling-growth reallocs —
	// the armed path costs one flat allocation per batch, not a copy.
	owned := s.store.replWantsFrames()
	if !owned {
		defer serverReadPool.Put(buf)
	} else {
		defer func() { serverReadPool.Put(bytes.NewBuffer(make([]byte, 0, buf.Cap()))) }()
	}
	if _, err := buf.ReadFrom(r.Body); err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	bp := serverEventsPool.Get().(*[]event.Event)
	events, err := event.DecodeBatch(buf.Bytes(), (*bp)[:0])
	if err != nil {
		*bp = events[:0]
		serverEventsPool.Put(bp)
		httpError(w, http.StatusBadRequest, "decode frame: %v", err)
		return
	}
	ingestErr := s.store.bulkEventsFrame(r.Context(), index, buf.Bytes(), owned, events)
	// AddEvents copies the structs into shard storage, so the batch can be
	// recycled as soon as the call returns.
	*bp = events[:0]
	serverEventsPool.Put(bp)
	if ingestErr != nil {
		if errors.Is(ingestErr, ErrReadOnlyFollower) {
			httpError(w, http.StatusConflict, "bulk: %v", ingestErr)
			return
		}
		httpError(w, http.StatusInternalServerError, "bulk: %v", ingestErr)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"items": len(events)})
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request, index string) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req SearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad search request: %v", err)
		return
	}
	resp, err := s.store.Search(r.Context(), index, req)
	if err != nil {
		if errors.Is(err, errBadSearchAfter) {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if errors.Is(err, ErrCursorExpired) {
			// 410 Gone: the cursor named rows the retention horizon already
			// dropped — a permanent condition, not worth a client retry.
			httpError(w, http.StatusGone, "%v", err)
			return
		}
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleScatter serves one partition's share of a cluster search: mergeable
// candidates and combined aggregation partials instead of a finished
// response (DESIGN.md §16). Error mapping matches _search — a scattered
// request must fail exactly like a direct one.
func (s *Server) handleScatter(w http.ResponseWriter, r *http.Request, index string) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var sreq ScatterRequest
	if err := json.NewDecoder(r.Body).Decode(&sreq); err != nil {
		httpError(w, http.StatusBadRequest, "bad scatter request: %v", err)
		return
	}
	resp, err := s.store.Scatter(r.Context(), index, sreq)
	if err != nil {
		switch {
		case errors.Is(err, errBadSearchAfter), errors.Is(err, errBadScatter):
			httpError(w, http.StatusBadRequest, "%v", err)
		case errors.Is(err, ErrCursorExpired):
			httpError(w, http.StatusGone, "%v", err)
		default:
			httpError(w, http.StatusNotFound, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request, index string) {
	var q Query
	if r.Body != nil && r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
			httpError(w, http.StatusBadRequest, "bad query: %v", err)
			return
		}
	}
	n, err := s.store.Count(r.Context(), index, q)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"count": n})
}

func (s *Server) handleCorrelate(w http.ResponseWriter, r *http.Request, index string) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	res, err := s.store.Correlate(r.Context(), index, r.URL.Query().Get("session"))
	if err != nil {
		if errors.Is(err, ErrUpdateBeyondRetention) {
			// 409 with a machine-readable reason: the correlation pass would
			// rewrite file paths on hot rows only, silently skipping the
			// retention-evicted ones, so the API refuses instead.
			writeJSON(w, http.StatusConflict, map[string]string{
				"error":  err.Error(),
				"reason": ReasonUpdateBeyondRetention,
			})
			return
		}
		if errors.Is(err, ErrReadOnlyFollower) {
			httpError(w, http.StatusConflict, "%v", err)
			return
		}
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request, index string) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	st, err := s.store.Stats(index)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
