package store

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
)

// The scatter API: the per-partition half of cluster search (DESIGN.md §16).
// A coordinator that stripes an index's rows across N nodes cannot use the
// plain _search response — it needs each node's top candidates BEFORE the
// pagination window is applied, the aggregation partials BEFORE they are
// finalized, and sort keys it can compare without re-materializing rows.
// POST /{index}/_scatter returns exactly that: the node runs the ordinary
// shard fan-out pipeline but stops one step earlier, shipping mergeable
// intermediates instead of a finished response. The coordinator then reduces
// the per-node responses with the same merge-layer functions (merge.go) the
// node itself used one level down.

// errBadScatter rejects malformed scatter envelopes; the HTTP layer maps it
// to 400 like any other client error.
var errBadScatter = errors.New("store: invalid scatter request: partition out of range")

// IsBadRequest reports whether err is a malformed-request error (bad
// search_after cursor, bad scatter envelope) that an HTTP layer should map to
// 400. The cluster coordinator uses it so a scattered request fails with the
// same status a direct one would.
func IsBadRequest(err error) bool {
	return errors.Is(err, errBadSearchAfter) || errors.Is(err, errBadScatter)
}

// ScatterRequest wraps one search with the node's place in the partition
// layout. Req is the client's ORIGINAL request — global pagination window,
// cluster-global cursor — so the node validates it exactly as a single-node
// store would; the node then derives its local execution plan (candidate
// budget From+Size, cursor translated into local row coordinates) itself.
type ScatterRequest struct {
	Req SearchRequest `json:"req"`
	// Partition / Partitions place this node in the cluster's row striping:
	// the node holds every cluster-global row g with g % Partitions ==
	// Partition, at local row id g / Partitions.
	Partition  int `json:"partition"`
	Partitions int `json:"partitions"`
}

// ScatterHit is one merge candidate: the node-local row id (the coordinator
// maps it back to the cluster-global id gid*Partitions+Partition), the
// cursor-rendered sort-key values (one per requested sort field, comparable
// with cmpField and embeddable verbatim in a next_after token), and the hit
// document pre-marshaled by the owning node. Shipping marshaled bytes is
// what keeps a cluster response byte-identical to a single node's: the
// coordinator never decodes and re-encodes a document, so no float64
// round-trip can corrupt int64-magnitude values.
type ScatterHit struct {
	Gid  int             `json:"gid"`
	Sort []any           `json:"sort,omitempty"`
	Doc  json.RawMessage `json:"doc"`
}

// ScatterResponse is one node's mergeable contribution: its full match
// count, its first need=From+Size candidates in request order (all of them
// for an unbounded request), and its combined-but-not-finalized aggregation
// partials.
type ScatterResponse struct {
	Total    int                   `json:"total"`
	Hits     []ScatterHit          `json:"hits"`
	Partials map[string]AggPartial `json:"partials,omitempty"`
}

// Scatter runs one partition's share of a cluster search against the named
// index. It accounts like a search (latency histogram, searches counter) but
// bypasses the node's query cache: the coordinator caches at the level where
// responses are complete.
func (s *Store) Scatter(ctx context.Context, index string, sreq ScatterRequest) (ScatterResponse, error) {
	ix, ok := s.GetIndex(index)
	if !ok {
		return ScatterResponse{}, fmt.Errorf("index %q not found", index)
	}
	var (
		resp ScatterResponse
		err  error
	)
	observeNS(s.tm.searchNS, func() {
		resp, err = ix.scatterCtx(ctx, sreq)
	})
	if err != nil {
		return ScatterResponse{}, err
	}
	s.tm.searches.Inc()
	return resp, nil
}

// scatterCtx executes the node-local plan: validate the original request,
// widen the window to the per-node candidate budget, run the shard fan-out
// with the partition view (cluster-global cursor translated after
// validation), and render refs and combined partials for the wire while the
// shard locks are still held.
func (ix *Index) scatterCtx(ctx context.Context, sreq ScatterRequest) (ScatterResponse, error) {
	if sreq.Partitions < 1 || sreq.Partition < 0 || sreq.Partition >= sreq.Partitions {
		return ScatterResponse{}, errBadScatter
	}
	req := sreq.Req
	// Validate the original request's cursor shape here (From alongside a
	// cursor, arity, gid bounds) so a scattered request fails exactly like a
	// single-node one; the rewritten request below always has From == 0 and
	// would mask the From/cursor conflict.
	if _, err := parseSearchAfter(req); err != nil {
		return ScatterResponse{}, err
	}
	// The coordinator applies the From/Size window after merging across
	// nodes; this node must contribute its first From+Size candidates.
	need := 0
	if req.Size > 0 {
		need = req.From + req.Size
	}
	nreq := req
	nreq.From = 0
	nreq.Size = need
	view := &partitionView{partition: sreq.Partition, partitions: sreq.Partitions}
	var (
		resp       ScatterResponse
		marshalErr error
	)
	err := ix.searchShards(ctx, nreq, view, func(refs []hitRef, total int, parts map[string]*partialAgg) {
		resp.Total = total
		resp.Hits = make([]ScatterHit, len(refs))
		for i, ref := range refs {
			b, err := json.Marshal(ref.sh.docView(ref.id))
			if err != nil {
				marshalErr = err
				return
			}
			hit := ScatterHit{Gid: ref.gid, Doc: b}
			if len(req.Sort) > 0 {
				hit.Sort = make([]any, len(req.Sort))
				for j, sf := range req.Sort {
					hit.Sort[j] = cursorVal(ref.sh.val(ref.id, sf.Field))
				}
			}
			resp.Hits[i] = hit
		}
		if len(parts) > 0 {
			resp.Partials = make(map[string]AggPartial, len(parts))
			for name, p := range parts {
				resp.Partials[name] = wirePartial(p)
			}
		}
	})
	if err != nil {
		return ScatterResponse{}, err
	}
	if marshalErr != nil {
		return ScatterResponse{}, fmt.Errorf("scatter: marshal hit: %w", marshalErr)
	}
	return resp, nil
}

// GatherResponse is the coordinator's merged search result. It is the wire
// twin of SearchResponse — same fields, same order, same omission rules — with
// hits carried as the raw bytes the owning nodes marshaled, so encoding it
// yields output byte-identical to a single node answering the same request
// over the same rows.
type GatherResponse struct {
	Total     int                  `json:"total"`
	Hits      []json.RawMessage    `json:"hits"`
	Aggs      map[string]AggResult `json:"aggs,omitempty"`
	NextAfter []any                `json:"next_after,omitempty"`
}

// gatherHit is one node's candidate lifted back into cluster-global
// coordinates for the top-level merge.
type gatherHit struct {
	sort []any
	g    int
	doc  json.RawMessage
}

// MergeScatters reduces per-partition scatter responses into a finished
// search response: the cluster-level half of the two-level fan-out, running
// the SAME merge-layer reductions (kwayMerge under the request's sort order
// with the gid tie-break, combine-then-finalize aggregation partials) the
// intra-node shard merge runs one level down. resps must be indexed by
// partition — resps[p] is the response from the node owning partition p of
// len(resps) — because the back-map from node-local row l on partition p to
// the cluster-global id is l*P + p. Each node's hit list arrives sorted in
// request order and windowed to the candidate budget, so the merge is
// streaming and the From/Size window is applied once, here.
func MergeScatters(req SearchRequest, resps []ScatterResponse) GatherResponse {
	P := len(resps)
	lists := make([][]gatherHit, P)
	total := 0
	for p := range resps {
		total += resps[p].Total
		hs := make([]gatherHit, len(resps[p].Hits))
		for i, h := range resps[p].Hits {
			hs[i] = gatherHit{sort: h.Sort, g: h.Gid*P + p, doc: h.Doc}
		}
		lists[p] = hs
	}
	// The node rendered sort keys through cursorVal, the same rendering
	// search_after tokens use, so cmpField over them reproduces the node-side
	// hitLess order exactly (the compatibility cursors already rely on).
	less := func(a, b gatherHit) bool {
		for i, s := range req.Sort {
			if r := cmpField(a.sort[i], b.sort[i], s.Desc); r != 0 {
				return r < 0
			}
		}
		return a.g < b.g
	}
	need := 0
	if req.Size > 0 {
		need = req.From + req.Size
	}
	merged := kwayMerge(lists, less, need)
	if req.From > 0 {
		if req.From >= len(merged) {
			merged = nil
		} else {
			merged = merged[req.From:]
		}
	}
	if req.Size > 0 && len(merged) > req.Size {
		merged = merged[:req.Size]
	}
	out := GatherResponse{Total: total, Hits: make([]json.RawMessage, len(merged))}
	for i := range merged {
		out.Hits[i] = merged[i].doc
	}
	if len(req.Aggs) > 0 {
		out.Aggs = make(map[string]AggResult, len(req.Aggs))
		for name, a := range req.Aggs {
			parts := make([]AggPartial, 0, P)
			for p := range resps {
				if ap, ok := resps[p].Partials[name]; ok {
					parts = append(parts, ap)
				}
			}
			out.Aggs[name] = MergeAggPartials(a, parts)
		}
	}
	// Same continuation rule as the single-node response: a token exactly when
	// the request was bounded and this page filled it, rendered as the last
	// hit's sort keys plus its (cluster-global) id.
	if req.Size > 0 && len(merged) == req.Size {
		last := merged[len(merged)-1]
		na := make([]any, 0, len(req.Sort)+1)
		na = append(na, last.sort...)
		out.NextAfter = append(na, float64(last.g))
	}
	return out
}
