package store

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/dsrhaslab/dio-go/internal/event"
)

// eventFixture mirrors docFixture as typed events (DurationNS is derived
// from the timestamps rather than stored, so exit = enter + duration).
func eventFixture() []event.Event {
	return []event.Event{
		{Session: "s1", Syscall: "openat", ProcName: "app", ThreadName: "app", RetVal: 3,
			TimeEnterNS: 100, TimeExitNS: 110, KernelPath: "/tmp/a",
			FileTag: event.FileTag{Dev: 1, Ino: 12, BirthNS: 5}},
		{Session: "s1", Syscall: "write", ProcName: "app", ThreadName: "app", RetVal: 26,
			TimeEnterNS: 200, TimeExitNS: 220,
			FileTag: event.FileTag{Dev: 1, Ino: 12, BirthNS: 5}, Offset: 0, HasOffset: true},
		{Session: "s1", Syscall: "read", ProcName: "fluent-bit", ThreadName: "flb-pipeline", RetVal: 26,
			TimeEnterNS: 300, TimeExitNS: 330,
			FileTag: event.FileTag{Dev: 1, Ino: 12, BirthNS: 5}, Offset: 0, HasOffset: true},
		{Session: "s1", Syscall: "read", ProcName: "fluent-bit", ThreadName: "flb-pipeline", RetVal: 0,
			TimeEnterNS: 400, TimeExitNS: 440,
			FileTag: event.FileTag{Dev: 1, Ino: 12, BirthNS: 5}, Offset: 26, HasOffset: true},
		{Session: "s2", Syscall: "unlink", ProcName: "app", ThreadName: "app", RetVal: 0,
			TimeEnterNS: 500, TimeExitNS: 550, ArgPath: "/tmp/a"},
	}
}

// TestTypedDocParity ingests the same data typed and as documents and checks
// that every query class answers identically over both representations.
func TestTypedDocParity(t *testing.T) {
	typed := NewIndex("typed")
	typed.AddEvents(eventFixture())
	docs := NewIndex("docs")
	docs.AddBulk(docFixture())

	queries := map[string]Query{
		"term string":  Term("syscall", "read"),
		"term numeric": Term("ret_val", 26),
		"terms":        Terms("syscall", "openat", "unlink"),
		"range":        RangeBetween("time_enter_ns", 200, 400),
		"prefix":       Prefix("kernel_path", "/tmp"),
		"exists":       Exists("file_tag"),
		"bool": Must(
			Term("session", "s1"),
			Term("proc_name", "fluent-bit"),
		),
		"match all": MatchAll(),
	}
	for name, q := range queries {
		if got, want := typed.Count(q), docs.Count(q); got != want {
			t.Errorf("%s: typed count %d, doc count %d", name, got, want)
		}
	}

	// Sorted hits come back in the same order with the same field values.
	req := SearchRequest{Query: Term("session", "s1"), Sort: []SortField{{Field: "time_enter_ns"}}}
	tr := typed.SearchEvents(req)
	dr := docs.Search(req)
	if tr.Total != dr.Total || len(tr.Hits) != len(dr.Hits) {
		t.Fatalf("totals: typed %d/%d, docs %d/%d", tr.Total, len(tr.Hits), dr.Total, len(dr.Hits))
	}
	for i := range tr.Hits {
		d := DocToEvent(dr.Hits[i])
		e := tr.Hits[i]
		// DurationNS is a stored field on the doc side only; compare the
		// identifying fields.
		if e.Syscall != d.Syscall || e.TimeEnterNS != d.TimeEnterNS ||
			e.ProcName != d.ProcName || e.RetVal != d.RetVal || e.FileTag != d.FileTag {
			t.Errorf("hit %d: typed %+v vs doc %+v", i, e, d)
		}
	}

	// Aggregations see the same values through both storage forms.
	areq := SearchRequest{Query: MatchAll(), Size: 1, Aggs: map[string]Agg{
		"by_proc": {Terms: &TermsAgg{Field: "proc_name"}},
		"hist":    {DateHistogram: &DateHistogramAgg{Field: "time_enter_ns", IntervalNS: 200}},
	}}
	ta := typed.Search(areq).Aggs
	da := docs.Search(areq).Aggs
	for name := range areq.Aggs {
		tb, db := ta[name].Buckets, da[name].Buckets
		if len(tb) != len(db) {
			t.Fatalf("agg %s: %d vs %d buckets", name, len(tb), len(db))
		}
		for i := range tb {
			if tb[i].Key != db[i].Key || tb[i].KeyNum != db[i].KeyNum || tb[i].Count != db[i].Count {
				t.Errorf("agg %s bucket %d: typed %+v vs doc %+v", name, i, tb[i], db[i])
			}
		}
	}
}

// TestUpdateByQueryOverTypedRows checks the write path the correlation
// algorithm uses still works when rows were ingested typed: the callback
// sees a materialized document and schema-field mutations persist.
func TestUpdateByQueryOverTypedRows(t *testing.T) {
	ix := NewIndex("typed")
	ix.AddEvents(eventFixture())
	n := ix.UpdateByQuery(Term("syscall", "read"), func(d Document) bool {
		d["file_path"] = "/tmp/a"
		return true
	})
	if n != 2 {
		t.Fatalf("updated %d rows, want 2", n)
	}
	res := ix.SearchEvents(SearchRequest{Query: Term("file_path", "/tmp/a")})
	if res.Total != 2 {
		t.Fatalf("file_path query total = %d, want 2", res.Total)
	}
	for i := range res.Hits {
		if res.Hits[i].FilePath != "/tmp/a" || res.Hits[i].Syscall != "read" {
			t.Fatalf("hit %d after update: %+v", i, res.Hits[i])
		}
	}
}

// TestMixedVersionFallback drives a binary-speaking client against a server
// with the binary protocol disabled (an "old" server): the first BulkEvents
// call must transparently degrade to NDJSON within the call, latch the
// downgrade, and still land every event.
func TestMixedVersionFallback(t *testing.T) {
	old := New()
	srv := NewServer(old)
	srv.SetBinaryProtocol(false)
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	oc := NewClient(hs.URL)

	if oc.BinaryDisabled() {
		t.Fatal("client latched before first call")
	}
	if err := oc.BulkEvents(context.Background(), "run1", eventFixture()); err != nil {
		t.Fatalf("BulkEvents against NDJSON-only server: %v", err)
	}
	if !oc.BinaryDisabled() {
		t.Fatal("client did not latch NDJSON fallback after 415")
	}
	n, err := oc.Count(context.Background(), "run1", MatchAll())
	if err != nil || n != len(eventFixture()) {
		t.Fatalf("count after fallback = (%d, %v), want %d", n, err, len(eventFixture()))
	}
	// Subsequent batches go straight to NDJSON and still land.
	if err := oc.BulkEvents(context.Background(), "run1", eventFixture()); err != nil {
		t.Fatalf("second BulkEvents: %v", err)
	}
	if n, _ := oc.Count(context.Background(), "run1", MatchAll()); n != 2*len(eventFixture()) {
		t.Fatalf("count after second batch = %d", n)
	}
}

// TestLegacyServerSilentDrop covers the server generation that predates
// both the binary protocol and the 415 answer: its NDJSON scanner reads a
// binary frame as one action line with no documents and acks
// {"items": 0} with HTTP 200. The client must treat that empty ack as
// "does not speak binary", resend the batch as NDJSON in the same call,
// and latch the downgrade — otherwise the batch is silently lost.
func TestLegacyServerSilentDrop(t *testing.T) {
	st := New()
	real := NewServer(st)
	legacy := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/_bulk") && !strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
			// Old scanner behaviour: nothing parses, everything is "fine".
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"items":0}`))
			return
		}
		real.ServeHTTP(w, r)
	})
	hs := httptest.NewServer(legacy)
	t.Cleanup(hs.Close)
	c := NewClient(hs.URL)

	if err := c.BulkEvents(context.Background(), "run1", eventFixture()); err != nil {
		t.Fatalf("BulkEvents against legacy server: %v", err)
	}
	if !c.BinaryDisabled() {
		t.Fatal("client did not latch NDJSON after the empty binary ack")
	}
	if n, err := c.Count(context.Background(), "run1", MatchAll()); err != nil || n != len(eventFixture()) {
		t.Fatalf("count after legacy fallback = (%d, %v), want %d", n, err, len(eventFixture()))
	}
}

// TestLegacyNDJSONScannerFallback drives BulkEvents against the real
// pre-binary-protocol bulk handler: a line scanner with no Content-Type
// dispatch that splits the body at 0x0A bytes and answers 400 "bad document"
// when a chunk does not parse as JSON. A realistic binary frame almost
// always contains an 0x0A somewhere in its little-endian integers (here
// count=10, a ten-byte read), so this server generation answers neither 415
// nor an empty ack. The client must treat the 400 as "does not speak
// binary", resend as NDJSON within the same call, and latch the downgrade —
// otherwise the shipper classifies the 400 permanent and drops the batch.
func TestLegacyNDJSONScannerFallback(t *testing.T) {
	st := New()
	real := NewServer(st)
	var rejected atomic.Int32
	legacy := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		parts := strings.Split(strings.Trim(r.URL.Path, "/"), "/")
		if len(parts) != 2 || parts[1] != "_bulk" {
			real.ServeHTTP(w, r)
			return
		}
		// The pre-binary handleBulk, verbatim: every body is NDJSON.
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 64*1024), 8*1024*1024)
		var docs []Document
		expectDoc := false
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			if !expectDoc {
				expectDoc = true
				continue
			}
			var d Document
			if err := json.Unmarshal([]byte(line), &d); err != nil {
				rejected.Add(1)
				httpError(w, http.StatusBadRequest, "bad document: %v", err)
				return
			}
			docs = append(docs, d)
			expectDoc = false
		}
		if err := sc.Err(); err != nil {
			httpError(w, http.StatusBadRequest, "read body: %v", err)
			return
		}
		if err := st.Bulk(context.Background(), parts[0], docs); err != nil {
			httpError(w, http.StatusInternalServerError, "bulk: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]int{"items": len(docs)})
	})
	hs := httptest.NewServer(legacy)
	t.Cleanup(hs.Close)
	c := NewClient(hs.URL)

	events := eventFixture()
	events[0].Count = 10 // read(fd, buf, 10): guarantees an 0x0A byte in the frame
	if !bytes.ContainsRune(event.EncodeBatch(nil, events), '\n') {
		t.Fatal("fixture frame contains no newline; the legacy scanner would not split it")
	}
	if err := c.BulkEvents(context.Background(), "run1", events); err != nil {
		t.Fatalf("BulkEvents against legacy scanner server: %v", err)
	}
	if rejected.Load() == 0 {
		t.Fatal("legacy server never rejected the frame; the 400 path was not exercised")
	}
	if !c.BinaryDisabled() {
		t.Fatal("client did not latch NDJSON after the legacy 400")
	}
	if n, err := c.Count(context.Background(), "run1", MatchAll()); err != nil || n != len(events) {
		t.Fatalf("count after legacy fallback = (%d, %v), want %d", n, err, len(events))
	}
}

// TestBulkEventsEarlyResponseNoRace hammers concurrent BulkEvents calls at a
// server that answers before reading the request body — the path where
// http.Client.Do returns while the transport's write goroutine may still be
// reading the frame. Under -race this catches recycling the frame buffer
// into the shared pool while an aborted write still reads it; bodies are
// kept larger than the server's post-handler drain limit so the write really
// is in flight when the response lands.
func TestBulkEventsEarlyResponseNoRace(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// 429 replies without touching r.Body and does not trigger the
		// NDJSON fallback, keeping the loop on the binary frame path.
		httpError(w, http.StatusTooManyRequests, "rejected without reading the body")
	}))
	t.Cleanup(hs.Close)
	c := NewClient(hs.URL)

	// Frames past the server's 256KB post-handler drain limit, so the
	// connection is torn down while part of the frame is still unwritten.
	batch := make([]event.Event, 4096)
	for i := range batch {
		batch[i] = event.Event{
			Session: "s", Syscall: "write", Class: "data", ProcName: "proc",
			ThreadName: "thread", PID: 1, TID: i, RetVal: 512,
			TimeEnterNS: int64(i), TimeExitNS: int64(i) + 1,
			ArgPath: strings.Repeat("x", 512),
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				// Every call fails with 429; the point is frame-buffer
				// lifetime across aborted writes, not delivery.
				_ = c.BulkEvents(context.Background(), "run1", batch)
			}
		}()
	}
	wg.Wait()
}

// TestEmptyStringPresenceParity pins the document-view presence contract on
// the always-stored string fields: EventToDoc writes session, syscall,
// class, proc_name, and thread_name even when empty, so a Term query for ""
// (and Exists) must answer identically whether the same rows were ingested
// typed or as documents — across the postings fast path, the typed scan,
// and the legacy full scan.
func TestEmptyStringPresenceParity(t *testing.T) {
	events := eventFixture() // Class is empty on every fixture event
	events[2].ThreadName = ""
	docs := make([]Document, len(events))
	for i := range events {
		docs[i] = EventToDoc(&events[i])
	}
	typed := NewIndex("typed")
	typed.AddEvents(events)
	docIx := NewIndex("docs")
	docIx.AddBulk(docs)
	legacyIx := NewIndex("legacy")
	legacyIx.AddBulk(docs)
	legacyIx.SetLegacyScan(true)

	queries := map[string]Query{
		"empty class term":  Term("class", ""),
		"empty thread term": Term("thread_name", ""),
		"empty syscall":     Term("syscall", ""),
		"class exists":      Exists("class"),
		// Omitted-when-empty fields must keep matching nothing.
		"empty arg_path term": Term("arg_path", ""),
	}
	for name, q := range queries {
		want := docIx.Count(q)
		if got := typed.Count(q); got != want {
			t.Errorf("%s: typed %d, document %d", name, got, want)
		}
		if got := legacyIx.Count(q); got != want {
			t.Errorf("%s: legacy scan %d, document %d", name, got, want)
		}
	}

	// Field/Visit agree with the document view key-for-key, empty values
	// included (every value in the schema is a comparable string/int64/bool).
	for i := range events {
		d := docs[i]
		seen := map[string]any{}
		events[i].Visit(func(name string, v any) { seen[name] = v })
		if len(seen) != len(d) {
			t.Fatalf("event %d: Visit yielded %d fields, document has %d\nvisit: %v\ndoc:   %v",
				i, len(seen), len(d), seen, d)
		}
		for k, dv := range d {
			if sv, ok := seen[k]; !ok || sv != dv {
				t.Errorf("event %d field %q: typed %v (present=%t), document %v", i, k, sv, ok, dv)
			}
		}
	}
}

// TestBinaryPathLandsTyped checks the happy path: a binary BulkEvents call
// against a current server ingests typed rows and they are queryable both
// ways.
func TestBinaryPathLandsTyped(t *testing.T) {
	st, c := newTestServerClient(t)
	if err := c.BulkEvents(context.Background(), "run1", eventFixture()); err != nil {
		t.Fatalf("BulkEvents: %v", err)
	}
	if c.BinaryDisabled() {
		t.Fatal("client fell back to NDJSON against a binary-capable server")
	}
	res, err := st.SearchEvents(context.Background(), "run1", SearchRequest{
		Query: Term("session", "s1"), Sort: []SortField{{Field: "time_enter_ns"}}})
	if err != nil {
		t.Fatalf("SearchEvents: %v", err)
	}
	if res.Total != 4 || res.Hits[0].Syscall != "openat" {
		t.Fatalf("typed search after binary ingest: total=%d hits=%+v", res.Total, res.Hits)
	}
	resp, err := c.Search(context.Background(), "run1", SearchRequest{Query: Term("syscall", "read")})
	if err != nil || resp.Total != 2 {
		t.Fatalf("doc search after binary ingest = (%+v, %v)", resp, err)
	}
}

// TestBulkBufferReuse asserts the client's NDJSON encode buffer comes from
// the pool after warm-up: repeated sequential Bulk calls must not grow the
// pool's miss counter.
func TestBulkBufferReuse(t *testing.T) {
	_, c := newTestServerClient(t)
	docs := docFixture()
	if err := c.Bulk(context.Background(), "run1", docs); err != nil {
		t.Fatalf("warm-up bulk: %v", err)
	}
	const calls = 32
	misses := bulkBufNews.Load()
	for i := 0; i < calls; i++ {
		if err := c.Bulk(context.Background(), "run1", docs); err != nil {
			t.Fatalf("bulk %d: %v", i, err)
		}
	}
	// Under -race, sync.Pool deliberately drops a fraction of Puts, so an
	// exact zero-miss assertion cannot hold there. Requiring strictly
	// fewer misses than calls still proves the buffer is reused (a
	// non-pooling implementation misses on every call), and an all-miss
	// run has probability 0.25^32 even in race mode.
	if got := bulkBufNews.Load() - misses; got >= calls {
		t.Fatalf("bulk buffer pool missed %d times across %d sequential calls: no reuse", got, calls)
	}
}

// TestRangeEdgeDifferential cross-checks every range evaluation path on
// GT/LT/GTE/LTE edge equality: the shared contains helper (document
// matching), the columnar rangeScan path, and the legacy full-scan path
// must agree for every combination of bounds anchored on stored values.
func TestRangeEdgeDifferential(t *testing.T) {
	vals := []int64{-5, 0, 10, 20, 20, 30, 40}
	var docs []Document
	var events []event.Event
	for i, v := range vals {
		docs = append(docs, Document{
			"session": "s", "syscall": "read", "proc_name": "p", "thread_name": "t",
			"ret_val": v, "time_enter_ns": int64(i),
		})
		events = append(events, event.Event{
			Session: "s", Syscall: "read", ProcName: "p", ThreadName: "t",
			RetVal: v, TimeEnterNS: int64(i), TimeExitNS: int64(i) + 1,
		})
	}
	docIx := NewIndex("docs")
	docIx.AddBulk(docs)
	typedIx := NewIndex("typed")
	typedIx.AddEvents(events)
	legacyIx := NewIndex("legacy")
	legacyIx.AddBulk(docs)
	legacyIx.SetLegacyScan(true)

	bounds := []float64{-6, -5, 0, 9, 10, 20, 21, 30, 40, 41}
	mk := func(gt, gte, lt, lte *float64) Query {
		return Query{Range: &RangeQuery{Field: "ret_val", GT: gt, GTE: gte, LT: lt, LTE: lte}}
	}
	check := func(name string, q Query) {
		t.Helper()
		// Ground truth: brute-force evaluation through the shared helper.
		want := 0
		for _, d := range docs {
			if q.Matches(d) {
				want++
			}
		}
		if got := docIx.Count(q); got != want {
			t.Errorf("%s: column path %d, brute force %d", name, got, want)
		}
		if got := typedIx.Count(q); got != want {
			t.Errorf("%s: typed path %d, brute force %d", name, got, want)
		}
		if got := legacyIx.Count(q); got != want {
			t.Errorf("%s: legacy path %d, brute force %d", name, got, want)
		}
	}
	for _, b := range bounds {
		b := b
		check(fmt.Sprintf("gt %v", b), mk(&b, nil, nil, nil))
		check(fmt.Sprintf("gte %v", b), mk(nil, &b, nil, nil))
		check(fmt.Sprintf("lt %v", b), mk(nil, nil, &b, nil))
		check(fmt.Sprintf("lte %v", b), mk(nil, nil, nil, &b))
		for _, hi := range bounds {
			hi := hi
			check(fmt.Sprintf("gt %v lt %v", b, hi), mk(&b, nil, &hi, nil))
			check(fmt.Sprintf("gte %v lte %v", b, hi), mk(nil, &b, nil, &hi))
			check(fmt.Sprintf("gt %v lte %v", b, hi), mk(&b, nil, nil, &hi))
			check(fmt.Sprintf("gte %v lt %v", b, hi), mk(nil, &b, &hi, nil))
		}
	}
}

// TestAddEventsAllocs pins the typed ingest path's allocation budget:
// adding a warm batch of events (terms already in the dictionaries, columns
// not yet built) must stay under 3 allocations per event amortized.
func TestAddEventsAllocs(t *testing.T) {
	base := make([]event.Event, 512)
	for i := range base {
		base[i] = event.Event{
			Session: "s", Syscall: "read", Class: "data", ProcName: "proc",
			ThreadName: "thread", PID: 1, TID: 2, RetVal: 4096,
			TimeEnterNS: int64(i) * 10, TimeExitNS: int64(i)*10 + 5,
		}
	}
	ix := NewIndex("bench")
	ix.AddEvents(base) // warm term dictionaries and shard slices
	allocs := testing.AllocsPerRun(10, func() {
		ix.AddEvents(base)
	})
	if perEvent := allocs / float64(len(base)); perEvent > 3 {
		t.Fatalf("typed ingest allocates %.2f allocs/event (total %.0f), budget is 3", perEvent, allocs)
	}
}
