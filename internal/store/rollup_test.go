package store

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"github.com/dsrhaslab/dio-go/internal/event"
	"github.com/dsrhaslab/dio-go/internal/telemetry"
)

// rollupFixture spreads n typed events over ~n milliseconds of trace time
// (many 100ms rollup buckets) across four sessions and six syscalls.
func rollupFixture(n int) []event.Event {
	syscalls := []string{"read", "write", "openat", "close", "fsync", "lseek"}
	evs := make([]event.Event, n)
	for i := range evs {
		enter := 5_000_000_000 + int64(i)*1_000_000
		evs[i] = event.Event{
			Session:     fmt.Sprintf("s%d", i%4),
			Syscall:     syscalls[i%len(syscalls)],
			Class:       "io",
			RetVal:      int64(i % 512),
			PID:         9,
			TID:         10 + i%2,
			ProcName:    fmt.Sprintf("proc%d", i%3),
			ThreadName:  fmt.Sprintf("w%d", i%2),
			TimeEnterNS: enter,
			TimeExitNS:  enter + 1_500,
		}
	}
	return evs
}

// rollupTwin builds two stores over identical ingest: one with continuous
// rollups at the default 100ms base, one with rollups disabled (the
// ablation), so every aggregation can be checked shape-for-shape.
func rollupTwin(t *testing.T) (on, off *Store) {
	t.Helper()
	var err error
	on, err = Open()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { on.Close() })
	off, err = Open(WithRollupInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { off.Close() })
	evs := rollupFixture(8_000)
	ctx := context.Background()
	for i := 0; i < len(evs); i += 1024 {
		j := min(i+1024, len(evs))
		if err := on.BulkEvents(ctx, "run", evs[i:j]); err != nil {
			t.Fatal(err)
		}
		if err := off.BulkEvents(ctx, "run", evs[i:j]); err != nil {
			t.Fatal(err)
		}
	}
	return on, off
}

// rollupShapes is the aggregation matrix: served shapes (terms over every
// indexed field, histograms at the base interval and exact multiples,
// session-scoped variants) and fallback shapes (sub-aggregations,
// non-divisible intervals, non-indexed fields, filtered queries).
func rollupShapes() []SearchRequest {
	terms := func(f string) map[string]Agg {
		return map[string]Agg{"t": {Terms: &TermsAgg{Field: f}}}
	}
	hist := func(interval int64) map[string]Agg {
		return map[string]Agg{"h": {DateHistogram: &DateHistogramAgg{Field: FieldTimeEnter, IntervalNS: interval}}}
	}
	shapes := []SearchRequest{
		{Query: MatchAll(), Size: 1, Aggs: terms(FieldSession)},
		{Query: MatchAll(), Size: 1, Aggs: terms(FieldSyscall)},
		{Query: MatchAll(), Size: 1, Aggs: terms(FieldProcName)},
		{Query: MatchAll(), Size: 1, Aggs: terms(FieldThreadName)},
		{Query: MatchAll(), Size: 1, Aggs: terms(FieldClass)},
		{Query: MatchAll(), Size: 1, Aggs: hist(100_000_000)},                 // base
		{Query: MatchAll(), Size: 1, Aggs: hist(300_000_000)},                 // 3x base, rebucketed
		{Query: MatchAll(), Size: 1, Aggs: hist(1_000_000_000)},               // 10x base
		{Query: MatchAll(), Size: 1, Aggs: hist(150_000_000)},                 // not a multiple: fallback
		{Query: MatchAll(), Size: 1, Aggs: terms(FieldRetVal)},                // not an indexed field: fallback
		{Query: Term(FieldSession, "s2"), Size: 1, Aggs: terms(FieldSyscall)}, // session partial
		{Query: Term(FieldSession, "s2"), Size: 1, Aggs: hist(100_000_000)},
		{Query: Term(FieldSession, "nope"), Size: 1, Aggs: terms(FieldSyscall)}, // absent session
		{Query: Term(FieldSyscall, "read"), Size: 1, Aggs: terms(FieldSession)}, // non-session filter: fallback
		{ // sub-aggregation: fallback
			Query: MatchAll(), Size: 1,
			Aggs: map[string]Agg{"h": {
				DateHistogram: &DateHistogramAgg{Field: FieldTimeEnter, IntervalNS: 1_000_000_000},
				Aggs:          map[string]Agg{"by_thread": {Terms: &TermsAgg{Field: FieldThreadName}}},
			}},
		},
		{ // mixed: one served, one fallback, same request
			Query: MatchAll(), Size: 1,
			Aggs: map[string]Agg{
				"t": {Terms: &TermsAgg{Field: FieldSyscall}},
				"s": {Stats: &StatsAgg{Field: FieldRetVal}},
			},
		},
	}
	return shapes
}

// TestRollupDifferential answers every dashboard aggregation twice — once
// from the rollup-maintaining store, once from the scanning ablation — and
// requires identical responses, while the telemetry counters prove the
// served shapes really came from rollup partials.
func TestRollupDifferential(t *testing.T) {
	on, off := rollupTwin(t)
	ctx := context.Background()
	reg := on.Telemetry()
	hits0 := reg.Snapshot().Counters[telemetry.MetricRollupAggHits]
	for i, req := range rollupShapes() {
		a, err := on.Search(ctx, "run", req)
		if err != nil {
			t.Fatalf("shape %d rollup: %v", i, err)
		}
		b, err := off.Search(ctx, "run", req)
		if err != nil {
			t.Fatalf("shape %d ablation: %v", i, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("shape %d diverges:\n rollup   %+v\n ablation %+v", i, a.Aggs, b.Aggs)
		}
	}
	if d := reg.Snapshot().Counters[telemetry.MetricRollupAggHits] - hits0; d == 0 {
		t.Error("no aggregation was served from rollup partials")
	}
	if reg.Snapshot().Counters[telemetry.MetricRollupAggMisses] == 0 {
		t.Error("fallback shapes recorded no rollup misses")
	}
}

// TestRollupStraySessionDisablesSessionServing covers the coercion edge:
// once a generic document carries a non-string session value, the
// session-scoped rollup path must stand down (valueEquals coerces numerics
// across types, which the string-keyed rollup cannot mirror) while answers
// stay correct via the fallback scan.
func TestRollupStraySessionDisablesSessionServing(t *testing.T) {
	on, off := rollupTwin(t)
	ctx := context.Background()
	stray := []Document{{FieldSession: int64(7), FieldSyscall: "read", FieldTimeEnter: int64(5_000_000_123)}}
	if err := on.Bulk(ctx, "run", stray); err != nil {
		t.Fatal(err)
	}
	if err := off.Bulk(ctx, "run", []Document{{FieldSession: int64(7), FieldSyscall: "read", FieldTimeEnter: int64(5_000_000_123)}}); err != nil {
		t.Fatal(err)
	}
	reqs := []SearchRequest{
		// The numeric-vs-string coercion case itself.
		{Query: Term(FieldSession, 7), Size: 1, Aggs: map[string]Agg{"t": {Terms: &TermsAgg{Field: FieldSyscall}}}},
		{Query: Term(FieldSession, "s1"), Size: 1, Aggs: map[string]Agg{"t": {Terms: &TermsAgg{Field: FieldSyscall}}}},
		// Whole-index terms still serve (stray only gates the session path).
		{Query: MatchAll(), Size: 1, Aggs: map[string]Agg{"t": {Terms: &TermsAgg{Field: FieldSession}}}},
	}
	for i, req := range reqs {
		a, err := on.Search(ctx, "run", req)
		if err != nil {
			t.Fatal(err)
		}
		b, err := off.Search(ctx, "run", req)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("stray-session shape %d diverges:\n rollup   %+v\n ablation %+v", i, a.Aggs, b.Aggs)
		}
	}
}

// TestRollupInvalidateAndRebuild mutates indexed fields in place through
// UpdateByQuery — the one write that can change history — and checks the
// rollup rebuilds (counted) and re-serves the corrected numbers.
func TestRollupInvalidateAndRebuild(t *testing.T) {
	on, off := rollupTwin(t)
	ctx := context.Background()
	reg := on.Telemetry()
	req := SearchRequest{Query: MatchAll(), Size: 1, Aggs: map[string]Agg{"t": {Terms: &TermsAgg{Field: FieldSyscall}}}}
	if _, err := on.Search(ctx, "run", req); err != nil {
		t.Fatal(err)
	}

	rewrite := func(d Document) bool {
		if d[FieldSyscall] == "fsync" {
			d[FieldSyscall] = "fdatasync"
			return true
		}
		return false
	}
	r0 := reg.Snapshot().Counters[telemetry.MetricRollupRebuilds]
	for name, st := range map[string]*Store{"rollup": on, "ablation": off} {
		if _, err := st.UpdateByQuery(ctx, "run", Term(FieldSyscall, "fsync"), rewrite); err != nil {
			t.Fatalf("%s update: %v", name, err)
		}
	}
	a, err := on.Search(ctx, "run", req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := off.Search(ctx, "run", req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("post-update aggs diverge:\n rollup   %+v\n ablation %+v", a.Aggs, b.Aggs)
	}
	for _, bkt := range a.Aggs["t"].Buckets {
		if bkt.Key == "fsync" {
			t.Error("rollup still serves the pre-update syscall name")
		}
	}
	if d := reg.Snapshot().Counters[telemetry.MetricRollupRebuilds] - r0; d == 0 {
		t.Error("update-by-query triggered no rollup rebuild")
	}
}

// TestRollupOverflowFallsBack caps the key budget low enough that the
// fixture blows through it: overflowing shards must drop their rollups and
// every aggregation still answers correctly via the scan path.
func TestRollupOverflowFallsBack(t *testing.T) {
	old := maxRollupKeys
	maxRollupKeys = 8
	defer func() { maxRollupKeys = old }()

	on, off := rollupTwin(t)
	ctx := context.Background()
	for i, req := range rollupShapes() {
		a, err := on.Search(ctx, "run", req)
		if err != nil {
			t.Fatal(err)
		}
		b, err := off.Search(ctx, "run", req)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("overflow shape %d diverges:\n rollup   %+v\n ablation %+v", i, a.Aggs, b.Aggs)
		}
	}
}

// TestRewriteRepostsAfterRecovery covers the posting maintenance on both
// the live and the replayed rewrite path: renaming an indexed term through
// UpdateByQuery must move the row between posting lists (Term queries and
// the postings-backed terms fast path see the new name, never the old), and
// a WAL replay of the same rewrite must reproduce that exactly.
func TestRewriteRepostsAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	dur, err := Open(WithDataDir(dir), WithFsyncPolicy(FsyncOff), WithSnapshotInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := dur.BulkEvents(ctx, "run", rollupFixture(600)); err != nil {
		t.Fatal(err)
	}
	// One generic row with a string syscall participates in postings too.
	if err := dur.Bulk(ctx, "run", []Document{{FieldSession: "g", FieldSyscall: "fsync", FieldTimeEnter: int64(5_000_000_001)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := dur.UpdateByQuery(ctx, "run", Term(FieldSyscall, "fsync"), func(d Document) bool {
		d[FieldSyscall] = "fdatasync"
		return true
	}); err != nil {
		t.Fatal(err)
	}

	check := func(name string, st *Store) {
		t.Helper()
		if n, err := st.Count(ctx, "run", Term(FieldSyscall, "fsync")); err != nil || n != 0 {
			t.Errorf("%s: %d rows still under the old term (err %v)", name, n, err)
		}
		want := 600/6 + 1 // every sixth fixture event, plus the generic row
		if n, err := st.Count(ctx, "run", Term(FieldSyscall, "fdatasync")); err != nil || n != want {
			t.Errorf("%s: %d rows under the new term, want %d (err %v)", name, n, want, err)
		}
		resp, err := st.Search(ctx, "run", SearchRequest{Query: MatchAll(), Size: 1,
			Aggs: map[string]Agg{"t": {Terms: &TermsAgg{Field: FieldSyscall, Size: 20}}}})
		if err != nil {
			t.Fatal(err)
		}
		for _, bkt := range resp.Aggs["t"].Buckets {
			if bkt.Key == "fsync" {
				t.Errorf("%s: terms agg still buckets the old name", name)
			}
		}
	}
	check("live", dur)
	if err := dur.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Open(WithDataDir(dir), WithFsyncPolicy(FsyncOff), WithSnapshotInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	check("recovered", rec)
}

// TestRollupSurvivesRecovery rebuilds a durable store from disk and checks
// recovered shards serve the same rollup answers as the never-closed twin.
func TestRollupSurvivesRecovery(t *testing.T) {
	on, _ := rollupTwin(t)
	dir := t.TempDir()
	dur, err := Open(WithDataDir(dir), WithFsyncPolicy(FsyncOff), WithSnapshotInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	evs := rollupFixture(8_000)
	for i := 0; i < len(evs); i += 1024 {
		if err := dur.BulkEvents(ctx, "run", evs[i:min(i+1024, len(evs))]); err != nil {
			t.Fatal(err)
		}
	}
	if err := dur.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Open(WithDataDir(dir), WithFsyncPolicy(FsyncOff), WithSnapshotInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	hits0 := rec.Telemetry().Snapshot().Counters[telemetry.MetricRollupAggHits]
	for i, req := range rollupShapes() {
		a, err := rec.Search(ctx, "run", req)
		if err != nil {
			t.Fatal(err)
		}
		b, err := on.Search(ctx, "run", req)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Aggs, b.Aggs) {
			t.Errorf("recovered shape %d diverges:\n recovered %+v\n live      %+v", i, a.Aggs, b.Aggs)
		}
	}
	if d := rec.Telemetry().Snapshot().Counters[telemetry.MetricRollupAggHits] - hits0; d == 0 {
		t.Error("recovered store served no aggregation from rollups")
	}
}
