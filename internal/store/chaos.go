package store

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// ChaosConfig tunes the HTTP fault injector wrapped around a Server.
type ChaosConfig struct {
	// Rate is the probability that a bulk request is rejected (0 disables
	// random injection).
	Rate float64 `json:"rate"`
	// Status is the injected response code (default 503).
	Status int `json:"status"`
	// RetryAfterSec is sent as a Retry-After header on injected responses
	// when positive.
	RetryAfterSec int `json:"retry_after_sec"`
	// OutageFrom/OutageTo script a full outage over the half-open bulk-call
	// window [OutageFrom, OutageTo): every request in it fails regardless of
	// Rate.
	OutageFrom uint64 `json:"outage_from"`
	OutageTo   uint64 `json:"outage_to"`
	// Repl extends fault targeting to the replication push path
	// (POST /_repl/apply and /_repl/bootstrap), sharing the same call
	// counter and outage window as bulk requests.
	Repl bool `json:"repl"`
}

// ChaosHandler wraps a backend HTTP handler with fault injection so the full
// tracer→client→server path can be exercised under failure. Faults target
// the ship path (POST /{index}/_bulk); during a scripted outage window the
// health endpoint fails too, mirroring a genuinely dead server. The injector
// is reconfigured at runtime over HTTP:
//
//	GET  /_chaos   current config plus injection counters
//	POST /_chaos   ChaosConfig JSON body replaces the config
type ChaosHandler struct {
	next http.Handler

	mu       sync.Mutex
	rng      *rand.Rand
	cfg      ChaosConfig
	calls    uint64 // bulk requests observed
	injected uint64
}

var _ http.Handler = (*ChaosHandler)(nil)

// NewChaosHandler wraps next with a deterministic (seeded) fault injector;
// the zero config injects nothing until /_chaos or SetConfig arms it.
func NewChaosHandler(next http.Handler, seed int64) *ChaosHandler {
	return &ChaosHandler{next: next, rng: rand.New(rand.NewSource(seed))}
}

// SetConfig replaces the chaos configuration.
func (c *ChaosHandler) SetConfig(cfg ChaosConfig) {
	c.mu.Lock()
	c.cfg = cfg
	c.mu.Unlock()
}

// Injected reports how many requests were failed by injection.
func (c *ChaosHandler) Injected() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.injected
}

// ServeHTTP implements http.Handler.
func (c *ChaosHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/_chaos" {
		c.handleControl(w, r)
		return
	}
	isBulk := r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/_bulk")
	isRepl := r.Method == http.MethodPost &&
		(strings.HasSuffix(r.URL.Path, "/_repl/apply") || strings.HasSuffix(r.URL.Path, "/_repl/bootstrap"))
	c.mu.Lock()
	cfg := c.cfg
	isTarget := isBulk || (cfg.Repl && isRepl)
	var call uint64
	if isTarget {
		call = c.calls
		c.calls++
	}
	inOutage := cfg.OutageTo > cfg.OutageFrom && isTarget &&
		call >= cfg.OutageFrom && call < cfg.OutageTo
	// During an outage everything but the control endpoint is down, so
	// health probes observe the failure too.
	if !isTarget && cfg.OutageTo > cfg.OutageFrom &&
		c.calls >= cfg.OutageFrom && c.calls < cfg.OutageTo {
		inOutage = true
	}
	roll := isTarget && !inOutage && cfg.Rate > 0 && c.rng.Float64() < cfg.Rate
	if inOutage || roll {
		c.injected++
	}
	c.mu.Unlock()

	if inOutage || roll {
		status := cfg.Status
		if status == 0 {
			status = http.StatusServiceUnavailable
		}
		if cfg.RetryAfterSec > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(cfg.RetryAfterSec))
		}
		writeJSON(w, status, map[string]string{
			"error": fmt.Sprintf("chaos: injected failure (bulk call %d)", call),
		})
		return
	}
	c.next.ServeHTTP(w, r)
}

func (c *ChaosHandler) handleControl(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		c.mu.Lock()
		out := map[string]any{"config": c.cfg, "bulk_calls": c.calls, "injected": c.injected}
		c.mu.Unlock()
		writeJSON(w, http.StatusOK, out)
	case http.MethodPost:
		var cfg ChaosConfig
		if err := json.NewDecoder(r.Body).Decode(&cfg); err != nil {
			httpError(w, http.StatusBadRequest, "bad chaos config: %v", err)
			return
		}
		c.SetConfig(cfg)
		writeJSON(w, http.StatusOK, map[string]any{"config": cfg})
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or POST required")
	}
}
