package store

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// conflictingAnchors builds open events for one tag with distinct paths and
// enter timestamps. The earliest open names the file; later opens model
// inode reuse after the original is deleted (§III-B).
func conflictingAnchors(tag string) []Document {
	return []Document{
		{"session": "s", "syscall": "openat", "file_tag": tag, "kernel_path": "/files/late", "time_enter_ns": int64(900)},
		{"session": "s", "syscall": "open", "file_tag": tag, "kernel_path": "/files/first", "time_enter_ns": int64(100)},
		{"session": "s", "syscall": "creat", "file_tag": tag, "kernel_path": "/files/mid", "time_enter_ns": int64(500)},
	}
}

// TestCorrelateDeterministicAnchor checks satellite 2: with several open
// anchors for one tag, the earliest FieldTimeEnter wins regardless of
// insertion order or shard count, so two correlation runs over the same
// events always build the same dictionary.
func TestCorrelateDeterministicAnchor(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shards := range []int{1, 2, 4, 8} {
		for trial := 0; trial < 8; trial++ {
			ix := NewIndexWithShards("det", shards)
			docs := conflictingAnchors("1 42 7")
			// A tagged event with no path, to be resolved from the dictionary.
			docs = append(docs, Document{"session": "s", "syscall": "read", "file_tag": "1 42 7"})
			rng.Shuffle(len(docs), func(i, j int) { docs[i], docs[j] = docs[j], docs[i] })
			ix.AddBulk(docs)

			res := CorrelateFilePaths(ix, "s")
			if res.TagsResolved != 1 {
				t.Fatalf("shards=%d trial=%d: tags = %d", shards, trial, res.TagsResolved)
			}
			resp := ix.Search(SearchRequest{Query: Term(FieldSyscall, "read")})
			if got := resp.Hits[0][FieldFilePath]; got != "/files/first" {
				t.Fatalf("shards=%d trial=%d: read resolved to %v, want earliest anchor /files/first",
					shards, trial, got)
			}
		}
	}
}

// TestCorrelateAnchorTieBreak checks the secondary ordering: equal enter
// timestamps fall back to the lexicographically smaller path, and anchors
// without a timestamp lose to any timestamped anchor.
func TestCorrelateAnchorTieBreak(t *testing.T) {
	ix := NewIndex("tie")
	ix.AddBulk([]Document{
		{"session": "s", "syscall": "open", "file_tag": "t", "kernel_path": "/b", "time_enter_ns": int64(100)},
		{"session": "s", "syscall": "open", "file_tag": "t", "kernel_path": "/a", "time_enter_ns": int64(100)},
		{"session": "s", "syscall": "open", "file_tag": "t", "kernel_path": "/z"}, // no timestamp
		{"session": "s", "syscall": "write", "file_tag": "t"},
	})
	CorrelateFilePaths(ix, "s")
	resp := ix.Search(SearchRequest{Query: Term(FieldSyscall, "write")})
	if got := resp.Hits[0][FieldFilePath]; got != "/a" {
		t.Fatalf("tie broke to %v, want /a", got)
	}
}

// TestCorrelateFallbackAnchors checks satellite 1's second pass: a tag whose
// open was never captured still resolves when a non-open path-carrying event
// (stat, unlink) names it — but such an event never overrides an open anchor.
func TestCorrelateFallbackAnchors(t *testing.T) {
	ix := NewIndex("fb")
	ix.AddBulk([]Document{
		// Tag "lost-open": only a stat carries the path.
		{"session": "s", "syscall": "stat", "file_tag": "lost-open", "kernel_path": "/via/stat", "time_enter_ns": int64(50)},
		{"session": "s", "syscall": "read", "file_tag": "lost-open"},
		// Tag "both": the stat is earlier, but the open anchor must win.
		{"session": "s", "syscall": "stat", "file_tag": "both", "kernel_path": "/wrong", "time_enter_ns": int64(10)},
		{"session": "s", "syscall": "openat", "file_tag": "both", "kernel_path": "/right", "time_enter_ns": int64(200)},
		{"session": "s", "syscall": "write", "file_tag": "both"},
	})
	res := CorrelateFilePaths(ix, "s")
	if res.TagsResolved != 2 {
		t.Fatalf("tags = %d, want 2", res.TagsResolved)
	}
	read := ix.Search(SearchRequest{Query: Term(FieldSyscall, "read")})
	if got := read.Hits[0][FieldFilePath]; got != "/via/stat" {
		t.Fatalf("fallback resolved to %v, want /via/stat", got)
	}
	write := ix.Search(SearchRequest{Query: Term(FieldSyscall, "write")})
	if got := write.Hits[0][FieldFilePath]; got != "/right" {
		t.Fatalf("open anchor overridden: got %v, want /right", got)
	}
}

// assertClosedAccounting checks satellite 3's invariant: every tagged event
// lands in exactly one outcome bucket.
func assertClosedAccounting(t *testing.T, res CorrelationResult) {
	t.Helper()
	if got := res.EventsUpdated + res.EventsUnresolved + res.EventsAlreadyResolved; got != res.EventsWithTag {
		t.Fatalf("accounting leak: updated %d + unresolved %d + already %d = %d, want with-tag %d",
			res.EventsUpdated, res.EventsUnresolved, res.EventsAlreadyResolved, got, res.EventsWithTag)
	}
}

func TestCorrelateClosedAccounting(t *testing.T) {
	ix := newFixtureIndex()
	ix.Add(Document{"session": "s1", "syscall": "read", "file_tag": "1 99 1", "ret_val": int64(5)})

	res := CorrelateFilePaths(ix, "s1")
	assertClosedAccounting(t, res)
	if res.EventsAlreadyResolved != 0 {
		t.Fatalf("first run already-resolved = %d, want 0", res.EventsAlreadyResolved)
	}

	// Second run: the 4 previously updated docs show up as already-resolved,
	// the orphan stays unresolved, and the books still close.
	res2 := CorrelateFilePaths(ix, "s1")
	assertClosedAccounting(t, res2)
	if res2.EventsUpdated != 0 || res2.EventsAlreadyResolved != 4 || res2.EventsUnresolved != 1 {
		t.Fatalf("second run = %+v", res2)
	}
}

// TestCorrelateDuringLiveIndexing runs the correlation pass concurrently
// with live bulk indexing into the same index — the paper's near-real-time
// pipeline (§II-E). Under -race this is the satellite-4 regression test; in
// any mode the final pass must resolve everything index-time races left
// behind, with closed accounting throughout.
func TestCorrelateDuringLiveIndexing(t *testing.T) {
	st := New()
	st.IndexOrCreate("run-live") // correlation may start before the first bulk
	const writers = 4
	const batches = 25
	const perBatch = 20

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				docs := make([]Document, 0, perBatch+1)
				tag := fmt.Sprintf("1 %d %d", w, b)
				path := fmt.Sprintf("/live/w%d/b%d", w, b)
				docs = append(docs, Document{
					"session": "live", "syscall": "openat",
					"file_tag": tag, "kernel_path": path,
					"time_enter_ns": int64(w*batches+b) * 1000,
				})
				for i := 1; i < perBatch; i++ {
					docs = append(docs, Document{"session": "live", "syscall": "write", "file_tag": tag})
				}
				if err := st.Bulk(context.Background(), "run-live", docs); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		res, err := st.Correlate(context.Background(), "run-live", "live")
		if err != nil {
			t.Fatal(err)
		}
		assertClosedAccounting(t, res)
		select {
		case <-done:
			// Quiesced: one more pass must leave nothing unresolved.
			final, err := st.Correlate(context.Background(), "run-live", "live")
			if err != nil {
				t.Fatal(err)
			}
			assertClosedAccounting(t, final)
			if final.EventsUnresolved != 0 {
				t.Fatalf("final pass left %d unresolved", final.EventsUnresolved)
			}
			if final.EventsWithTag != writers*batches*perBatch {
				t.Fatalf("with-tag = %d, want %d", final.EventsWithTag, writers*batches*perBatch)
			}
			return
		default:
		}
	}
}
