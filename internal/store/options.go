package store

import (
	"fmt"
	"time"

	"github.com/dsrhaslab/dio-go/internal/telemetry"
)

// FsyncPolicy selects when the write-ahead log is flushed to stable storage,
// trading ingest latency against the window of acknowledged-but-volatile
// events a crash can lose.
type FsyncPolicy int

const (
	// FsyncInterval (the default) flushes on a background timer: a crash
	// loses at most the last interval's events, and the fsync cost is
	// amortized across every batch in the window.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways flushes after every journaled batch before the write is
	// acknowledged: no acknowledged event is ever lost, at per-batch fsync
	// cost.
	FsyncAlways
	// FsyncOff never flushes explicitly; the OS writes back on its own
	// schedule. A crash can lose everything the kernel still buffered, but a
	// clean process exit loses nothing.
	FsyncOff
)

// String returns the policy's flag spelling.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncOff:
		return "off"
	default:
		return "interval"
	}
}

// ParseFsyncPolicy parses a -fsync flag value.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "interval", "":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	case "off":
		return FsyncOff, nil
	default:
		return FsyncInterval, fmt.Errorf("unknown fsync policy %q (want always, interval, or off)", s)
	}
}

// storeOptions is the resolved configuration a Store is built from.
type storeOptions struct {
	shards        int
	dataDir       string
	fsync         FsyncPolicy
	fsyncEvery    time.Duration
	snapshotEvery time.Duration
	reg           *telemetry.Registry
	cacheEntries  int           // query cache capacity per index (0 disables)
	rollupBase    int64         // continuous rollup base interval ns (0 disables)
	replTailBytes int           // per-index replication tail buffer budget
	retention     time.Duration // drop cold segments older than this (0 keeps all)
}

func defaultOptions() storeOptions {
	return storeOptions{
		fsync:         FsyncInterval,
		fsyncEvery:    100 * time.Millisecond,
		snapshotEvery: time.Minute,
		cacheEntries:  256,
		rollupBase:    defaultRollupIntervalNS,
		replTailBytes: 4 << 20,
	}
}

// Option configures a Store at construction.
type Option func(*storeOptions)

// WithShards fixes the shard count for indices this store creates (<= 0
// keeps the automatic GOMAXPROCS-derived default). Recovered indices keep
// the shard count recorded in their manifest.
func WithShards(n int) Option {
	return func(o *storeOptions) { o.shards = n }
}

// WithDataDir enables durability: every index journals writes to a
// write-ahead log and periodically snapshots to a columnar segment under
// dir, and Open recovers existing indices from it. The empty string (the
// default) keeps the store purely in-memory.
func WithDataDir(dir string) Option {
	return func(o *storeOptions) { o.dataDir = dir }
}

// WithFsyncPolicy selects the WAL flush policy (FsyncInterval by default).
// It has no effect without WithDataDir.
func WithFsyncPolicy(p FsyncPolicy) Option {
	return func(o *storeOptions) { o.fsync = p }
}

// WithFsyncInterval sets the flush period for FsyncInterval (default 100ms).
func WithFsyncInterval(d time.Duration) Option {
	return func(o *storeOptions) {
		if d > 0 {
			o.fsyncEvery = d
		}
	}
}

// WithSnapshotInterval sets the period of the background segment-snapshot
// loop (default 1m); 0 disables automatic snapshots, leaving them to
// explicit Snapshot calls. It has no effect without WithDataDir.
func WithSnapshotInterval(d time.Duration) Option {
	return func(o *storeOptions) { o.snapshotEvery = d }
}

// WithTelemetry registers the store's instruments in reg instead of a fresh
// private registry, so one scrape endpoint can serve co-located components.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(o *storeOptions) { o.reg = reg }
}

// WithQueryCache sets the per-index query cache capacity in entries (default
// 256; <= 0 disables caching). Entries are invalidated by the index epoch,
// which every mutation bumps, so capacity only bounds memory — never
// staleness.
func WithQueryCache(entries int) Option {
	return func(o *storeOptions) {
		if entries < 0 {
			entries = 0
		}
		o.cacheEntries = entries
	}
}

// WithReplicationBuffer sets the per-index in-memory replication tail buffer
// budget in bytes (default 4MB). The buffer keeps recent WAL records
// available to the replication shipper across snapshots, so a follower lagging
// by less than the budget is never forced into a full bootstrap; larger
// budgets tolerate longer partitions at memory cost. Size it to at least one
// shipper poll interval of sustained ingest (bytes/s x interval): frames
// evicted before the shipper drains them are re-read from the WAL file —
// correct, but a re-read and CRC check of bytes that were just in memory.
// <= 0 disables the buffer — followers then resync from the live WAL file
// or bootstrap.
func WithReplicationBuffer(bytes int) Option {
	return func(o *storeOptions) {
		if bytes < 0 {
			bytes = 0
		}
		o.replTailBytes = bytes
	}
}

// WithRetention bounds how long rows stay queryable (0, the default, keeps
// everything forever). It has no effect without WithDataDir. With retention
// on, every snapshot evicts flushed rows from shard memory into immutable
// time-stamped segments (bounding resident memory under sustained ingest),
// and the maintenance pass drops whole segments once every row in them is
// older than d — queries, counts, and aggregations then stop seeing those
// rows, and unsorted paging cursors positioned before a drop fail with
// ErrCursorExpired instead of silently skipping. Note update-by-query only
// reaches rows still in shard memory under retention: bounded memory is
// traded for update reach over evicted history.
func WithRetention(d time.Duration) Option {
	return func(o *storeOptions) {
		if d < 0 {
			d = 0
		}
		o.retention = d
	}
}

// WithRollupInterval sets the continuous rollup's base histogram interval
// (default 100ms; 0 disables rollup maintenance entirely). Date-histogram
// aggregations are rollup-served when their interval is a multiple of the
// base.
func WithRollupInterval(d time.Duration) Option {
	return func(o *storeOptions) {
		if d < 0 {
			d = 0
		}
		o.rollupBase = d.Nanoseconds()
	}
}
