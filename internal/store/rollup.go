package store

import "github.com/dsrhaslab/dio-go/internal/event"

// Continuous rollups: every shard maintains pre-merged partialAgg shapes for
// the dashboard aggregations — terms counts over the indexed keyword fields
// and a base-interval date histogram of time_enter_ns — incrementally at
// ingest. A query whose filter the rollup can key exactly (match-all, or a
// single term on the session field) and whose aggregations have no
// sub-aggregations is answered from these partials instead of scanning the
// shard, which is what keeps p99 dashboard latency flat while typed ingest
// runs at full rate.
//
// Correctness rules, each mirroring the scan path it replaces:
//
//   - Terms counts key by keyString (missing fields land in ""), exactly as
//     shard.termCounts does for a full scan.
//   - The histogram keys at base-aligned truncated buckets; an aggregation
//     interval I is servable iff I % base == 0, and re-bucketing a
//     base-aligned key to I is exact (trunc division composes for I = k·base).
//   - bySession groups only rows whose session value is a string. Rows with
//     any other representation bump sessionStray, and while sessionStray > 0
//     term-on-session queries fall back to the scan (valueEquals has Sprintf
//     coercion edges — numeric 5 matches "5" — that string-keyed maps cannot
//     reproduce). Typed events always have a string session, so the tracer's
//     own workload never strays.
//   - UpdateByQuery may rewrite any field in place, so it invalidates the
//     rollup (dirty flag, maps freed) alongside the column caches; the next
//     rollup-eligible search rebuilds it under the shard write lock before
//     taking read locks.
//   - Total map-key cardinality is capped; past the cap the rollup frees its
//     maps and serves nothing until the next rebuild, so adversarial key
//     cardinality degrades to the scan path instead of growing RSS.
const defaultRollupIntervalNS = int64(100_000_000) // 100ms histogram base

// maxRollupKeys caps the total map keys one shard's rollup may hold across
// all partials (a package variable so tests can force overflow cheaply).
var maxRollupKeys = 1 << 16

// rollupPartial is the pre-merged aggregation state for one group of rows:
// per-indexed-field term counts and the base-aligned time_enter histogram.
// Both maps are exactly the count-only partialAgg shapes the merge layer
// (combinePartials) consumes, so serving is a pointer handoff under the held
// read lock.
type rollupPartial struct {
	terms [len(indexedFieldList)]map[string]int
	hist  map[int64]int
}

// indexedFieldList fixes slot order for rollupPartial.terms. It must stay in
// sync with indexedFields (asserted at init).
var indexedFieldList = [...]string{FieldSession, FieldSyscall, FieldProcName, FieldThreadName, FieldClass}

func init() {
	if len(indexedFieldList) != len(indexedFields) {
		panic("store: indexedFieldList out of sync with indexedFields")
	}
	for _, f := range indexedFieldList {
		found := false
		for _, g := range indexedFields {
			if f == g {
				found = true
			}
		}
		if !found {
			panic("store: indexedFieldList out of sync with indexedFields")
		}
	}
}

// rollupSlot maps an indexed field name to its terms slot, -1 when the field
// is not indexed.
func rollupSlot(field string) int {
	for i, f := range indexedFieldList {
		if f == field {
			return i
		}
	}
	return -1
}

func newRollupPartial() *rollupPartial {
	p := &rollupPartial{hist: make(map[int64]int)}
	for i := range p.terms {
		p.terms[i] = make(map[string]int)
	}
	return p
}

// shardRollup is one shard's continuous rollup state. All access is under the
// shard's mutex: writes (ingest maintenance, invalidation, rebuild) under the
// write lock, serving under the read lock.
type shardRollup struct {
	base int64 // histogram bucket width in ns (> 0; 0 never constructs one)

	dirty    bool // an in-place rewrite happened; rebuild before serving
	overflow bool // key cap exceeded; serve nothing until the next rebuild

	sessionStray int // rows whose session value is not a string
	keys         int // total map keys across all partials, for the cap

	all       *rollupPartial
	bySession map[string]*rollupPartial
}

func newShardRollup(base int64) *shardRollup {
	return &shardRollup{
		base:      base,
		all:       newRollupPartial(),
		bySession: make(map[string]*rollupPartial),
	}
}

// live reports whether the rollup can serve right now.
func (r *shardRollup) live() bool { return r != nil && !r.dirty && !r.overflow }

// invalidate marks the rollup stale and frees its state. Caller holds the
// shard write lock.
func (r *shardRollup) invalidate() {
	if r == nil || r.dirty {
		return
	}
	r.dirty = true
	r.all, r.bySession = nil, nil
	r.keys, r.sessionStray = 0, 0
}

// drop frees the maps after a cap overflow; the dirty flag stays clear so
// ingest keeps skipping maintenance until a rebuild is forced.
func (r *shardRollup) drop() {
	r.overflow = true
	r.all, r.bySession = nil, nil
	r.keys, r.sessionStray = 0, 0
}

// incTerm / incHist count one row into a map, tracking total key cardinality
// through len() deltas (O(1), no double lookup).
func (r *shardRollup) incTerm(m map[string]int, k string) {
	n := len(m)
	m[k]++
	if len(m) != n {
		r.keys++
	}
}

func (r *shardRollup) incHist(m map[int64]int, k int64) {
	n := len(m)
	m[k]++
	if len(m) != n {
		r.keys++
	}
}

// sessionPartial returns the per-session group for key s, creating it on
// first use.
func (r *shardRollup) sessionPartial(s string) *rollupPartial {
	p := r.bySession[s]
	if p == nil {
		p = newRollupPartial()
		r.bySession[s] = p
		r.keys++
	}
	return p
}

// addEvent folds one typed row into the rollup. Caller holds the shard write
// lock. Steady state (known session, known terms, in-range bucket) performs
// only map increments — no allocation — which is what keeps the typed ingest
// path inside its AllocsPerRun budget.
func (r *shardRollup) addEvent(e *event.Event) {
	if r == nil || r.dirty || r.overflow {
		return
	}
	bucket := e.TimeEnterNS / r.base * r.base
	r.bumpEvent(r.all, e, bucket)
	r.bumpEvent(r.sessionPartial(e.Session), e, bucket)
	if r.keys > maxRollupKeys {
		r.drop()
	}
}

func (r *shardRollup) bumpEvent(p *rollupPartial, e *event.Event, bucket int64) {
	r.incTerm(p.terms[0], e.Session)
	r.incTerm(p.terms[1], e.Syscall)
	r.incTerm(p.terms[2], e.ProcName)
	r.incTerm(p.terms[3], e.ThreadName)
	r.incTerm(p.terms[4], e.Class)
	r.incHist(p.hist, bucket)
}

// addDoc folds one generic row into the rollup. Caller holds the shard write
// lock. Term keys follow keyString (missing fields count under ""), the
// histogram skips rows whose time_enter_ns is not numeric — both exactly the
// scan semantics.
func (r *shardRollup) addDoc(d Document) {
	if r == nil || r.dirty || r.overflow {
		return
	}
	bucket, haveBucket := int64(0), false
	if f, ok := numeric(d[FieldTimeEnter]); ok {
		bucket, haveBucket = int64(f)/r.base*r.base, true
	}
	r.bumpDoc(r.all, d, bucket, haveBucket)
	if s, ok := d[FieldSession].(string); ok {
		r.bumpDoc(r.sessionPartial(s), d, bucket, haveBucket)
	} else {
		r.sessionStray++
	}
	if r.keys > maxRollupKeys {
		r.drop()
	}
}

func (r *shardRollup) bumpDoc(p *rollupPartial, d Document, bucket int64, haveBucket bool) {
	for i, f := range indexedFieldList {
		r.incTerm(p.terms[i], keyString(d[f]))
	}
	if haveBucket {
		r.incHist(p.hist, bucket)
	}
}

// invalidateRollupLocked drops the shard's rollup state after an in-place
// update, alongside the column caches. Caller holds the write lock.
func (sh *shard) invalidateRollupLocked() { sh.rollup.invalidate() }

// rebuildRollupLocked recomputes the rollup from row storage. Caller holds
// the write lock. A rebuild that overflows the key cap leaves the rollup
// dropped (scan fallback) but clean, so it is not re-attempted per query.
func (sh *shard) rebuildRollupLocked() {
	r := sh.rollup
	if r == nil {
		return
	}
	base := r.base
	*r = *newShardRollup(base)
	for i := range sh.docs {
		if d := sh.docs[i]; d != nil {
			r.addDoc(d)
		} else {
			r.addEvent(&sh.events[i])
		}
		if r.overflow {
			return
		}
	}
}

// ensureRollups rebuilds any dirty shard rollup before a rollup-eligible
// search takes its read locks, mirroring ensureColumns' check-then-upgrade
// pattern. A concurrent UpdateByQuery can re-dirty a shard afterwards; the
// per-shard serve check under the read lock falls back to the scan then.
func (ix *Index) ensureRollups() {
	for _, sh := range ix.shards {
		sh.mu.RLock()
		need := sh.rollup != nil && sh.rollup.dirty
		sh.mu.RUnlock()
		if !need {
			continue
		}
		sh.mu.Lock()
		if sh.rollup != nil && sh.rollup.dirty {
			sh.rebuildRollupLocked()
			ix.rtm.rollupRebuilds.Inc()
		}
		sh.mu.Unlock()
	}
}

// rollupPlan is the per-request decision of which aggregations the rollups
// can serve, computed once before the shard fan-out. nil means the request is
// not rollup-eligible at all.
type rollupPlan struct {
	matchAll bool
	session  string // valid when !matchAll: the Term(session, …) filter value
	served   map[string]bool
}

// planRollup inspects the request: the filter must be match-all or exactly
// one term on the session field with a string value, and a served
// aggregation must be a no-sub-agg terms over an indexed field or a
// no-sub-agg date histogram over time_enter_ns whose interval is a multiple
// of the rollup base.
func (ix *Index) planRollup(req SearchRequest) *rollupPlan {
	if ix.rollupBase <= 0 || len(req.Aggs) == 0 {
		return nil
	}
	// Shard rollups only cover rows in shard memory; with cold rows in play
	// (retention eviction) a rollup-served partial would drop the cold tier's
	// contribution, so every agg falls back to the scan path (which fans out
	// over cold segments too).
	if ix.coldRows.Load() > 0 {
		return nil
	}
	p := &rollupPlan{}
	q := req.Query
	switch {
	case q.matchesAll():
		p.matchAll = true
	case q.Term != nil && q.Term.Field == FieldSession &&
		q.Terms == nil && q.Range == nil && q.Prefix == nil && q.Exists == nil && q.Bool == nil:
		s, ok := q.Term.Value.(string)
		if !ok {
			return nil
		}
		p.session = s
	default:
		return nil
	}
	for name, a := range req.Aggs {
		if !rollupServable(a, ix.rollupBase) {
			continue
		}
		if p.served == nil {
			p.served = make(map[string]bool, len(req.Aggs))
		}
		p.served[name] = true
	}
	if p.served == nil {
		return nil
	}
	return p
}

// rollupServable reports whether one aggregation's shape can come from the
// rollup partials.
func rollupServable(a Agg, base int64) bool {
	if len(a.Aggs) > 0 {
		return false
	}
	switch {
	case a.Terms != nil:
		return rollupSlot(a.Terms.Field) >= 0
	case a.DateHistogram != nil:
		return a.DateHistogram.Field == FieldTimeEnter &&
			a.DateHistogram.IntervalNS > 0 && a.DateHistogram.IntervalNS%base == 0
	default:
		return false
	}
}

// rollupServe answers one planned aggregation from the shard's rollup, or
// nil to fall back to the scan (rollup dropped, re-dirtied concurrently, or
// the session filter is unsound because stray session representations
// exist). Caller holds the shard read lock; the returned partial aliases the
// live rollup maps, which is safe because combinePartials only reads and the
// read lock is held through the merge.
func (sh *shard) rollupServe(p *rollupPlan, a Agg) *partialAgg {
	r := sh.rollup
	if !r.live() {
		return nil
	}
	var g *rollupPartial
	if p.matchAll {
		g = r.all
	} else {
		if r.sessionStray > 0 {
			return nil
		}
		g = r.bySession[p.session]
		if g == nil {
			// No rows for this session in this shard: an empty partial.
			return &partialAgg{}
		}
	}
	if a.Terms != nil {
		return &partialAgg{termCounts: g.terms[rollupSlot(a.Terms.Field)]}
	}
	interval := a.DateHistogram.IntervalNS
	if interval == r.base {
		return &partialAgg{histCounts: g.hist}
	}
	// Re-bucket the base-aligned keys to the coarser interval. Exact for
	// interval = k·base: truncating toward zero in two steps equals one.
	counts := make(map[int64]int, len(g.hist))
	for k, n := range g.hist {
		counts[k/interval*interval] += n
	}
	return &partialAgg{histCounts: counts}
}
