package store

import "time"

// HealthStatus is the enriched GET /_health body. The legacy fields —
// "status" and "indices" — keep their original shape and meaning, so old
// probes and breakers parse it unchanged; everything else is additive:
// replication role, per-index durability freshness (WAL size, fsync and
// snapshot ages), and per-target replication lag when this node ships to
// followers.
type HealthStatus struct {
	Status  string `json:"status"`
	Indices int    `json:"indices"`
	Role    string `json:"role"`
	Durable bool   `json:"durable"`
	// Index maps index name → durability/replication detail (durable stores
	// only; an in-memory store reports none).
	Index map[string]IndexHealth `json:"index,omitempty"`
	// Replication carries one entry per follower this node ships to.
	Replication []ReplHealth `json:"replication,omitempty"`
}

// IndexHealth is one index's durability and replication freshness.
type IndexHealth struct {
	Docs int `json:"docs"`
	// WALBytes is the live WAL's current size (headers included).
	WALBytes int64 `json:"wal_bytes"`
	// HeadSeq is the number of records ever journaled (the head sequence).
	HeadSeq int64 `json:"head_seq"`
	// AppliedSeq is the primary sequence applied so far (followers only).
	AppliedSeq int64 `json:"applied_seq,omitempty"`
	// DirtyRecords counts journaled records not yet folded into a segment.
	DirtyRecords int64 `json:"dirty_records"`
	// FsyncAgeMS / SnapshotAgeMS are milliseconds since the last fsync /
	// committed snapshot; -1 means never (for fsync that is only alarming
	// when DirtyRecords is nonzero under an interval policy).
	FsyncAgeMS    int64 `json:"fsync_age_ms"`
	SnapshotAgeMS int64 `json:"snapshot_age_ms"`
}

// ReplHealth is one replication target's shipping state, reported by the
// replicator that pushes to it.
type ReplHealth struct {
	Target string `json:"target"`
	// Lag is primary head minus follower acked, summed across indices.
	Lag int64 `json:"lag"`
	// LastSyncMS is milliseconds since the last fully-acked pass; -1 means no
	// pass has completed yet.
	LastSyncMS int64 `json:"last_sync_ms"`
	// Bootstraps counts full-state transfers shipped to this target.
	Bootstraps uint64 `json:"bootstraps"`
	// SeqRejects counts out-of-sequence pushes the target bounced (each one
	// triggers a resync).
	SeqRejects uint64 `json:"seq_rejects"`
}

// RegisterReplicaHealth adds a per-target replication health source to
// Health's report; the replicator shipping to each follower registers one.
func (s *Store) RegisterReplicaHealth(fn func() ReplHealth) {
	s.replHealthMu.Lock()
	s.replHealth = append(s.replHealth, fn)
	s.replHealthMu.Unlock()
}

// ageMS converts a unix-ns timestamp to "milliseconds ago" (-1 for never).
func ageMS(unixNS int64, now time.Time) int64 {
	if unixNS == 0 {
		return -1
	}
	ms := (now.UnixNano() - unixNS) / int64(time.Millisecond)
	if ms < 0 {
		ms = 0
	}
	return ms
}

// Health snapshots the store's operational state for GET /_health.
func (s *Store) Health() HealthStatus {
	h := HealthStatus{
		Status:  "ok",
		Role:    s.Role().String(),
		Durable: s.opts.dataDir != "",
	}
	now := time.Now()
	follower := s.Role() == RoleFollower
	s.mu.RLock()
	h.Indices = len(s.indices)
	for name, ix := range s.indices {
		d := ix.dur
		if d == nil {
			continue
		}
		ih := IndexHealth{
			Docs:          ix.Len(),
			HeadSeq:       d.recSeq.Load(),
			DirtyRecords:  d.dirty.Load(),
			FsyncAgeMS:    ageMS(d.lastFsync.Load(), now),
			SnapshotAgeMS: ageMS(d.lastSnap.Load(), now),
		}
		d.appendMu.Lock()
		w := d.wal
		d.appendMu.Unlock()
		if w != nil {
			ih.WALBytes = w.Size()
		}
		if follower {
			ih.AppliedSeq = ix.replSeq.Load()
		}
		if h.Index == nil {
			h.Index = make(map[string]IndexHealth, len(s.indices))
		}
		h.Index[name] = ih
	}
	s.mu.RUnlock()
	s.replHealthMu.Lock()
	fns := append([]func() ReplHealth(nil), s.replHealth...)
	s.replHealthMu.Unlock()
	for _, fn := range fns {
		h.Replication = append(h.Replication, fn())
	}
	return h
}
