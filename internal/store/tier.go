package store

import (
	"context"
	"fmt"
	"math"
	"path/filepath"
	"sort"

	"github.com/dsrhaslab/dio-go/internal/durable"
	"github.com/dsrhaslab/dio-go/internal/event"
)

// This file is the cold read path of the tiered layout: opening committed
// segment files as transient row stores and running the regular search
// pipeline over them, with time-range pruning so a narrow dashboard query
// over a long retention window only ever touches the segments whose stamped
// [MinTime, MaxTime] range can contain matches.

// satFloor/satCeil convert a float query bound to int64, saturating at the
// representable range, and satInc/satDec step without overflow.
func satFloor(f float64) int64 {
	if f <= math.MinInt64 {
		return math.MinInt64
	}
	if f >= math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(math.Floor(f))
}

func satCeil(f float64) int64 {
	if f <= math.MinInt64 {
		return math.MinInt64
	}
	if f >= math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(math.Ceil(f))
}

func satInc(v int64) int64 {
	if v == math.MaxInt64 {
		return v
	}
	return v + 1
}

func satDec(v int64) int64 {
	if v == math.MinInt64 {
		return v
	}
	return v - 1
}

// timeBounds extracts the time_enter_ns window every matching row must fall
// in: [min, max] in integer nanoseconds, (MinInt64, MaxInt64) when the query
// implies no bound. It mirrors the evaluator's clause precedence exactly
// (Term → Terms → Range → Prefix → Exists → Bool, first set clause wins) and
// only descends into Bool.Must — a required conjunct constrains every match,
// while Should/MustNot clauses never tighten the window.
func timeBounds(q Query) (int64, int64) {
	minT, maxT := int64(math.MinInt64), int64(math.MaxInt64)
	switch {
	case q.Term != nil, q.Terms != nil:
		return minT, maxT
	case q.Range != nil:
		r := q.Range
		if r.Field != FieldTimeEnter {
			return minT, maxT
		}
		if r.GTE != nil {
			if v := satCeil(*r.GTE); v > minT {
				minT = v
			}
		}
		if r.GT != nil {
			if v := satInc(satFloor(*r.GT)); v > minT {
				minT = v
			}
		}
		if r.LTE != nil {
			if v := satFloor(*r.LTE); v < maxT {
				maxT = v
			}
		}
		if r.LT != nil {
			if v := satDec(satCeil(*r.LT)); v < maxT {
				maxT = v
			}
		}
		return minT, maxT
	case q.Prefix != nil, q.Exists != nil:
		return minT, maxT
	case q.Bool != nil:
		for _, sub := range q.Bool.Must {
			lo, hi := timeBounds(sub)
			if lo > minT {
				minT = lo
			}
			if hi < maxT {
				maxT = hi
			}
		}
		return minT, maxT
	default:
		return minT, maxT
	}
}

// segMayMatch reports whether a segment can hold a row inside [minT, maxT].
// An unknown range (v1-era segment) may always match. An empty range
// (MinTime > MaxTime) means no row carries a numeric time — and a derived
// bound implies a required numeric clause on time_enter_ns, which an untimed
// row can never satisfy, so the segment is safely pruned. The stamped range
// is widened by ±1 before the overlap test: generic document times are
// stamped truncated, so a row's actual (possibly fractional) time lies
// strictly within one unit of its stamp.
func segMayMatch(sm durable.SegmentMeta, minT, maxT int64) bool {
	if sm.TimeUnknown() {
		return true
	}
	if sm.MinTime > sm.MaxTime {
		return false
	}
	return satDec(sm.MinTime) <= maxT && satInc(sm.MaxTime) >= minT
}

// coldSegment is one opened segment: its rows loaded into a transient
// (unshared, unlocked) shard, plus the explicit global id of each local row
// — cold segments can be sparse after compaction folded retention gaps.
type coldSegment struct {
	sh   *shard
	gids []int
}

// openColdSegment reads a committed segment into a transient shard,
// substituting pending-overlay rewrites (by absolute gid) at decode time so
// cold reads observe post-flush update-by-query effects. Rollups are
// disabled on the transient shard (base 0); columns build on demand.
func (ix *Index) openColdSegment(sm durable.SegmentMeta, overlay map[int]Document) (*coldSegment, error) {
	cs := &coldSegment{sh: newShard(0), gids: make([]int, 0, sm.Rows)}
	path := filepath.Join(ix.dur.dir, durable.SegmentName(sm.Seq))
	_, err := durable.ReadSegment(path, func(gid int, ev *event.Event, doc []byte) error {
		abs := int(sm.StartRow) + gid
		if d2, ok := overlay[abs]; ok {
			if ev != nil {
				e := DocToEvent(d2)
				cs.sh.addEventLocked(&e)
			} else {
				cs.sh.addLocked(d2)
			}
		} else if ev != nil {
			cs.sh.addEventLocked(ev)
		} else {
			var d2 Document
			if derr := decodeGob(doc, &d2); derr != nil {
				return fmt.Errorf("cold row gid %d: %w", abs, derr)
			}
			cs.sh.addLocked(d2)
		}
		cs.gids = append(cs.gids, abs)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cs, nil
}

// coldSegments returns the committed segments below the eviction base — the
// rows not present in shard memory. The caller holds at least one shard read
// lock, which freezes both the base and the published list (they only change
// under every shard write lock), and guarantees the files outlive the read
// (obsolete files are deleted only after those write locks were held).
func (ix *Index) coldSegments() ([]durable.SegmentMeta, int64) {
	segs := *ix.dur.segs.Load()
	base := ix.base.Load()
	n := 0
	for _, sm := range segs {
		if sm.EndRow <= base {
			n++
		}
	}
	out := make([]durable.SegmentMeta, 0, n)
	for _, sm := range segs {
		if sm.EndRow <= base {
			out = append(out, sm)
		}
	}
	return out, base
}

// coldSearch runs the per-shard search stage over every cold segment the
// query's time window cannot exclude, returning one shardResult per opened
// segment. Caller holds every hot shard's read lock (searchRefs).
func (ix *Index) coldSearch(ctx context.Context, exec *searchExec) ([]shardResult, error) {
	segs, _ := ix.coldSegments()
	if len(segs) == 0 {
		return nil, nil
	}
	overlay := ix.dur.pendingOverlay()
	minT, maxT := timeBounds(exec.req.Query)
	hasBound := minT > math.MinInt64 || maxT < math.MaxInt64
	prune := hasBound && !ix.pruneOff.Load()
	cols := neededColumns(exec.req, nil)
	var out []shardResult
	for _, sm := range segs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if prune && !segMayMatch(sm, minT, maxT) {
			ix.rtm.segPruned.Inc()
			continue
		}
		if hasBound {
			ix.rtm.segOpened.Inc()
		}
		cs, err := ix.openColdSegment(sm, overlay)
		if err != nil {
			return nil, err
		}
		cs.sh.ensureColumns(cols)
		gidOf := func(id int32) int { return cs.gids[id] }
		firstAfter := func(gid int) int32 { return int32(sort.SearchInts(cs.gids, gid+1)) }
		cs.sh.mu.RLock()
		out = append(out, cs.sh.searchLocked(exec, gidOf, firstAfter))
		cs.sh.mu.RUnlock()
	}
	return out, nil
}

// coldCount counts query matches across the cold segments, with the same
// pruning and pending-overlay semantics as coldSearch. Caller holds every
// hot shard's read lock (countCtx).
func (ix *Index) coldCount(ctx context.Context, q Query) (int, error) {
	segs, _ := ix.coldSegments()
	if len(segs) == 0 {
		return 0, nil
	}
	overlay := ix.dur.pendingOverlay()
	minT, maxT := timeBounds(q)
	hasBound := minT > math.MinInt64 || maxT < math.MaxInt64
	prune := hasBound && !ix.pruneOff.Load()
	cols := neededColumns(SearchRequest{Query: q}, nil)
	n := 0
	for _, sm := range segs {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if prune && !segMayMatch(sm, minT, maxT) {
			ix.rtm.segPruned.Inc()
			continue
		}
		if hasBound {
			ix.rtm.segOpened.Inc()
		}
		cs, err := ix.openColdSegment(sm, overlay)
		if err != nil {
			return 0, err
		}
		cs.sh.ensureColumns(cols)
		cs.sh.mu.RLock()
		if q.matchesAll() {
			n += len(cs.sh.docs)
		} else {
			n += len(cs.sh.matchIDs(q, true))
		}
		cs.sh.mu.RUnlock()
	}
	return n, nil
}
