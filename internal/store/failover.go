package store

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/dsrhaslab/dio-go/internal/event"
)

// FailoverClient fans a Backend over a set of replicated nodes: it sends
// every request to the node it believes is primary and, when that node dies
// or demotes, re-probes the set, switches to whichever node now reports
// itself primary, and retries the request once. Search cursors survive the
// switch because search_after carries sort values, not node state — a cursor
// minted on the old primary resumes on the promoted follower as long as
// replication caught up to the rows already seen.
//
// The client discovers primaries; it never elects them. Promotion is the
// operator's (or diod's) move, so a full-cluster outage stays an error
// instead of a split brain.
type FailoverClient struct {
	nodes  []*Client
	active atomic.Int32
	// probeTimeout bounds each health probe during repick (default 2s).
	probeTimeout time.Duration
	// switches counts primary changes (observability, tests).
	switches atomic.Uint64
}

var (
	_ Backend       = (*FailoverClient)(nil)
	_ EventBackend  = (*FailoverClient)(nil)
	_ EventSearcher = (*FailoverClient)(nil)
)

// NewFailoverClient wraps the given nodes; the first is the presumed primary
// until a failure forces a re-probe. At least one node is required.
func NewFailoverClient(nodes ...*Client) (*FailoverClient, error) {
	if len(nodes) == 0 {
		return nil, errors.New("failover: at least one node required")
	}
	return &FailoverClient{nodes: nodes, probeTimeout: 2 * time.Second}, nil
}

// Active returns the node currently receiving traffic.
func (f *FailoverClient) Active() *Client { return f.nodes[f.active.Load()] }

// Switches reports how many times the client changed primaries.
func (f *FailoverClient) Switches() uint64 { return f.switches.Load() }

// failoverWorthy reports whether err suggests the active node is dead or no
// longer primary, rather than the request itself being bad. Transport-level
// failures (no *HTTPError) and 5xx qualify; so do 403/409, which the server
// uses for role mismatches (writes to a read-only follower). Plain client
// errors — bad query, missing index — are returned to the caller untouched.
func failoverWorthy(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var he *HTTPError
	if !errors.As(err, &he) {
		return true // transport failure: connection refused, reset, ...
	}
	switch {
	case he.Status >= 500:
		return true
	case he.Status == 403 || he.Status == 409:
		return true
	}
	return false
}

// repick probes every node's health — the non-active ones first, since the
// active one just failed — and switches to the first that reports itself
// primary. Probes use fresh short-deadline contexts detached from the failed
// request's (possibly expired) context. Returns true if a primary was found.
func (f *FailoverClient) repick() bool {
	cur := f.active.Load()
	order := make([]int32, 0, len(f.nodes))
	for i := range f.nodes {
		if int32(i) != cur {
			order = append(order, int32(i))
		}
	}
	order = append(order, cur)
	for _, i := range order {
		ctx, cancel := context.WithTimeout(context.Background(), f.probeTimeout)
		h, err := f.nodes[i].HealthStatus(ctx)
		cancel()
		if err != nil || h.Role != RolePrimary.String() {
			continue
		}
		if i != cur {
			f.active.Store(i)
			f.switches.Add(1)
		}
		return true
	}
	return false
}

// do runs op against the active node, and on a failover-worthy error
// re-probes the set and retries once against the new primary.
func (f *FailoverClient) do(ctx context.Context, op func(*Client) error) error {
	err := op(f.Active())
	if !failoverWorthy(err) {
		return err
	}
	if ctx.Err() != nil {
		return err
	}
	if !f.repick() {
		return fmt.Errorf("failover: no primary found after error: %w", err)
	}
	return op(f.Active())
}

// Bulk implements Backend.
func (f *FailoverClient) Bulk(ctx context.Context, index string, docs []Document) error {
	return f.do(ctx, func(c *Client) error { return c.BulkContext(ctx, index, docs) })
}

// BulkEvents implements EventBackend.
func (f *FailoverClient) BulkEvents(ctx context.Context, index string, events []event.Event) error {
	return f.do(ctx, func(c *Client) error { return c.BulkEventsContext(ctx, index, events) })
}

// Search implements Backend.
func (f *FailoverClient) Search(ctx context.Context, index string, req SearchRequest) (SearchResponse, error) {
	var res SearchResponse
	err := f.do(ctx, func(c *Client) error {
		var e error
		res, e = c.Search(ctx, index, req)
		return e
	})
	return res, err
}

// SearchEvents implements EventSearcher.
func (f *FailoverClient) SearchEvents(ctx context.Context, index string, req SearchRequest) (EventsResult, error) {
	var res EventsResult
	err := f.do(ctx, func(c *Client) error {
		var e error
		res, e = c.SearchEvents(ctx, index, req)
		return e
	})
	return res, err
}

// Count implements Backend.
func (f *FailoverClient) Count(ctx context.Context, index string, q Query) (int, error) {
	var n int
	err := f.do(ctx, func(c *Client) error {
		var e error
		n, e = c.Count(ctx, index, q)
		return e
	})
	return n, err
}

// Correlate implements Backend.
func (f *FailoverClient) Correlate(ctx context.Context, index, session string) (CorrelationResult, error) {
	var res CorrelationResult
	err := f.do(ctx, func(c *Client) error {
		var e error
		res, e = c.Correlate(ctx, index, session)
		return e
	})
	return res, err
}

// BulkFrame forwards an already-encoded binary event frame.
func (f *FailoverClient) BulkFrame(ctx context.Context, index string, frame []byte) error {
	return f.do(ctx, func(c *Client) error { return c.BulkFrame(ctx, index, frame) })
}

// Scatter runs one partition's share of a cluster search. A scatter is a
// read, but it still rides the failover ladder: when the partition's primary
// dies mid-query the promoted follower answers the retry, and sorted
// search_after cursors survive the switch because they carry sort values,
// not node state.
func (f *FailoverClient) Scatter(ctx context.Context, index string, sreq ScatterRequest) (ScatterResponse, error) {
	var res ScatterResponse
	err := f.do(ctx, func(c *Client) error {
		var e error
		res, e = c.Scatter(ctx, index, sreq)
		return e
	})
	return res, err
}

// Stats fetches index stats from the active node.
func (f *FailoverClient) Stats(ctx context.Context, index string) (IndexStats, error) {
	var st IndexStats
	err := f.do(ctx, func(c *Client) error {
		var e error
		st, e = c.Stats(ctx, index)
		return e
	})
	return st, err
}

// ListIndices lists index names on the active node.
func (f *FailoverClient) ListIndices(ctx context.Context) ([]string, error) {
	var names []string
	err := f.do(ctx, func(c *Client) error {
		var e error
		names, e = c.ListIndices(ctx)
		return e
	})
	return names, err
}

// DeleteIndex drops the named index on the active node.
func (f *FailoverClient) DeleteIndex(ctx context.Context, index string) error {
	return f.do(ctx, func(c *Client) error { return c.DeleteIndex(ctx, index) })
}

// HealthStatus fetches the active node's full health report, failing over to
// a promoted node first if the active one is gone.
func (f *FailoverClient) HealthStatus(ctx context.Context) (HealthStatus, error) {
	var h HealthStatus
	err := f.do(ctx, func(c *Client) error {
		var e error
		h, e = c.HealthStatus(ctx)
		return e
	})
	return h, err
}

// Health probes the active node.
func (f *FailoverClient) Health() error { return f.Active().Health() }
