package store

import (
	"errors"
	"math"
)

// Streaming search cursors ("search_after"): a sorted search whose response
// filled its page carries a NextAfter token — the page's last row rendered as
// its sort-key values plus the global id as the tie-break. Re-issuing the
// request with that token as SearchAfter resumes strictly after that row, so
// large result sets page in bounded responses instead of materializing at
// once. The gid makes the position total even among fully tied sort keys,
// which is what lets paged output replay a monolithic sorted search exactly.
//
// Wire format: "search_after" is a JSON array of len(sort)+1 scalars — one
// value per sort field in request order (string or number, null for a field
// the row lacked), then the gid as a number. Tokens are only meaningful for
// the same index state and the same sort spec they were issued under.

// errBadSearchAfter rejects malformed cursors; the HTTP layer maps it to 400.
var errBadSearchAfter = errors.New("store: invalid search_after cursor")

// ErrCursorExpired rejects an unsorted (insertion-order) cursor whose resume
// position precedes the retention floor: rows past it may have been dropped
// by the retention horizon, so resuming would silently skip data. The HTTP
// layer maps it to 410 Gone; clients restart the walk from the beginning.
// Sorted cursors resume by sort key and never expire — a concurrent drop
// only shrinks the remaining result set.
var ErrCursorExpired = errors.New("store: search_after cursor expired: rows beyond it were dropped by retention")

// searchCursor is a parsed SearchAfter: the boundary row's sort-key values
// and its global id.
type searchCursor struct {
	vals []any
	gid  int
}

// parseSearchAfter validates and decodes req.SearchAfter (nil cursor when the
// request has none). A cursor replaces From — the caller resumes a walk, not
// an offset — so a nonzero From alongside one is an error.
func parseSearchAfter(req SearchRequest) (*searchCursor, error) {
	if len(req.SearchAfter) == 0 {
		return nil, nil
	}
	if req.From != 0 {
		return nil, errBadSearchAfter
	}
	if len(req.SearchAfter) != len(req.Sort)+1 {
		return nil, errBadSearchAfter
	}
	last := req.SearchAfter[len(req.SearchAfter)-1]
	f, ok := numeric(last)
	if !ok || f != math.Trunc(f) || f < 0 || f >= maxExactInt {
		return nil, errBadSearchAfter
	}
	return &searchCursor{
		vals: req.SearchAfter[:len(req.SearchAfter)-1],
		gid:  int(f),
	}, nil
}

// afterVals reports whether a row with the given sort-key accessor and gid
// sorts strictly after the cursor position. val(i) must return the row's
// value for sort field i.
func (c *searchCursor) afterVals(val func(i int) any, gid int, sorts []SortField) bool {
	for i, s := range sorts {
		if r := cmpField(val(i), c.vals[i], s.Desc); r != 0 {
			return r > 0
		}
	}
	return gid > c.gid
}

// afterID is afterVals for a shard row. Caller holds the shard read lock.
func (c *searchCursor) afterID(sh *shard, id int32, gid int, sorts []SortField) bool {
	return c.afterVals(func(i int) any { return sh.val(id, sorts[i].Field) }, gid, sorts)
}

// afterDoc is afterVals for a materialized document (the legacy scan path).
func (c *searchCursor) afterDoc(d Document, gid int, sorts []SortField) bool {
	return c.afterVals(func(i int) any { return d[sorts[i].Field] }, gid, sorts)
}

// firstLocalAfter returns the smallest local id of shard shardIdx (of S)
// whose global id (id*S + shardIdx) exceeds gid — the O(1) resume point for
// unsorted (insertion-order) paging.
func firstLocalAfter(gid, shardIdx, S int) int32 {
	num := gid + 1 - shardIdx
	if num <= 0 {
		return 0
	}
	return int32((num + S - 1) / S)
}

// cursorVal renders one row value as a cursor scalar that survives a JSON
// round-trip and compares back equal under cmpField: strings stay strings,
// numerics (bool included — sorting already coerces through numeric) become
// float64, anything else degrades to null.
func cursorVal(v any) any {
	if s, ok := v.(string); ok {
		return s
	}
	if f, ok := numeric(v); ok {
		return f
	}
	return nil
}

// nextAfterRef encodes the continuation token for the page ending at ref.
// Caller holds the shard read lock.
func nextAfterRef(ref hitRef, sorts []SortField) []any {
	out := make([]any, 0, len(sorts)+1)
	for _, s := range sorts {
		out = append(out, cursorVal(ref.sh.val(ref.id, s.Field)))
	}
	return append(out, float64(ref.gid))
}

// nextAfterDoc is nextAfterRef for the legacy scan path.
func nextAfterDoc(d Document, gid int, sorts []SortField) []any {
	out := make([]any, 0, len(sorts)+1)
	for _, s := range sorts {
		out = append(out, cursorVal(d[s.Field]))
	}
	return append(out, float64(gid))
}
