package store

import (
	"time"

	"github.com/dsrhaslab/dio-go/internal/durable"
	"github.com/dsrhaslab/dio-go/internal/event"
)

// compactFanout is the leveled merge trigger: a run of this many adjacent
// same-level segments merges into one segment at the next level, so N
// flushes leave O(log N) segments and recovery/search touch a bounded list.
const compactFanout = 4

// Compact runs one maintenance pass over every durable index: leveled
// segment compaction until no mergeable run remains, then a retention sweep
// dropping cold segments wholly older than the configured horizon. The
// background snapshot loop runs the same pass after each periodic snapshot;
// this export is for operational use (and tests) on stores without a
// snapshot interval. No-op on in-memory stores.
func (s *Store) Compact() error { return s.maintain() }

// maintain serializes maintenance passes: the exported Compact and the
// snapshot loop must not interleave, or a retention sweep could delete input
// files a concurrent merge is still reading (merges read lock-free — their
// inputs stay manifest-listed for the duration only if no other maintainer
// runs).
func (s *Store) maintain() error {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	var first error
	for _, ix := range s.allIndices() {
		if ix.dur == nil {
			continue
		}
		for {
			merged, err := ix.compactOnce()
			if err != nil {
				if first == nil {
					first = err
				}
				break
			}
			if !merged {
				break
			}
		}
		if err := ix.retainOnce(time.Now()); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// planCompaction picks the first run of compactFanout adjacent same-level
// segments (skipping v1-era metas whose row counts are unknown), or nil.
func planCompaction(segs []durable.SegmentMeta) []durable.SegmentMeta {
	for i := 0; i+compactFanout <= len(segs); i++ {
		ok := true
		for j := 0; j < compactFanout; j++ {
			if segs[i+j].Level != segs[i].Level || segs[i+j].Rows < 0 {
				ok = false
				break
			}
		}
		if ok {
			run := make([]durable.SegmentMeta, compactFanout)
			copy(run, segs[i:i+compactFanout])
			return run
		}
	}
	return nil
}

// findRun locates run as a contiguous slice of cur (matched by sequence and
// row count), or -1 — the commit-time revalidation that the planned inputs
// are still exactly what the manifest lists.
func findRun(cur, run []durable.SegmentMeta) int {
	for i := 0; i+len(run) <= len(cur); i++ {
		if cur[i].Seq != run[0].Seq {
			continue
		}
		for j := range run {
			if cur[i+j].Seq != run[j].Seq || cur[i+j].Rows != run[j].Rows {
				return -1
			}
		}
		return i
	}
	return -1
}

// docTimeExtract recovers a stored generic document's time_enter_ns for the
// merge writer's pruning range.
func docTimeExtract(b []byte) (int64, bool) {
	var d Document
	if err := decodeGob(b, &d); err != nil {
		return 0, false
	}
	if f, ok := numeric(d[FieldTimeEnter]); ok {
		return int64(f), true
	}
	return 0, false
}

// compactOnce merges one planned run and commits the replacement, returning
// whether a merge happened. The expensive read+write runs outside all locks
// against immutable committed files; only the output-sequence claim and the
// manifest commit take the exclusive gate. A crash after the segment write
// but before the commit leaves an orphan file recovery's CleanOrphans
// removes; a concurrent layout change (another flush landed mid-merge is
// fine — the run is revalidated, and a vanished run just abandons the
// output).
func (ix *Index) compactOnce() (bool, error) {
	d := ix.dur
	d.gate.RLock()
	run := planCompaction(*d.segs.Load())
	d.gate.RUnlock()
	if run == nil {
		return false, nil
	}
	d.gate.Lock()
	outSeq := d.segSeq
	d.segSeq++
	d.gate.Unlock()
	// Snapshot the pending overlay: merged-in rewrites stop needing their
	// overlay entries, but only if the map didn't grow mid-merge (pendVer
	// detects that; the entries then survive to the next pass — harmless,
	// re-applying a rewrite is idempotent).
	d.pendMu.Lock()
	ver := d.pendVer
	var overlayMap map[int]Document
	if len(d.pending) > 0 {
		overlayMap = make(map[int]Document, len(d.pending))
		for g, doc := range d.pending {
			overlayMap[g] = doc
		}
	}
	d.pendMu.Unlock()
	var overlay durable.RewriteOverlay
	if overlayMap != nil {
		overlay = func(gid int64, ev *event.Event, doc []byte) (durable.SegmentRow, bool, error) {
			d2, ok := overlayMap[int(gid)]
			if !ok {
				return durable.SegmentRow{}, false, nil
			}
			if ev != nil {
				// Typed rows stay typed: the rewrite goes back through the
				// schema, exactly like the live UpdateByQuery write-back.
				e := DocToEvent(d2)
				return durable.SegmentRow{Event: &e}, true, nil
			}
			b, err := encodeGob(d2)
			if err != nil {
				return durable.SegmentRow{}, false, err
			}
			r := durable.SegmentRow{Doc: b}
			if f, ok := numeric(d2[FieldTimeEnter]); ok {
				r.DocTime, r.DocTimed = int64(f), true
			}
			return r, true, nil
		}
	}
	merged, err := durable.MergeSegments(d.dir, run, outSeq, len(ix.shards), overlay, docTimeExtract)
	if err != nil {
		durable.RemoveSegment(d.dir, outSeq)
		return false, err
	}
	d.gate.Lock()
	cur := *d.segs.Load()
	lo := findRun(cur, run)
	if lo < 0 {
		d.gate.Unlock()
		durable.RemoveSegment(d.dir, outSeq)
		return false, nil
	}
	d.pendMu.Lock()
	fold := d.pendVer == ver
	d.pendMu.Unlock()
	inMerged := func(gid int) bool {
		return int64(gid) >= merged.StartRow && int64(gid) < merged.EndRow
	}
	blob, err := d.pendingBlob(func(gid int) bool { return fold && inMerged(gid) })
	if err != nil {
		d.gate.Unlock()
		durable.RemoveSegment(d.dir, outSeq)
		return false, err
	}
	newSegs := make([]durable.SegmentMeta, 0, len(cur)-len(run)+1)
	newSegs = append(newSegs, cur[:lo]...)
	newSegs = append(newSegs, merged)
	newSegs = append(newSegs, cur[lo+len(run):]...)
	m := durable.Manifest{
		Shards:         len(ix.shards),
		WALSeq:         d.walSeq,
		SegmentSeq:     d.segSeq,
		Segments:       newSegs,
		BaseSeq:        d.baseSeq,
		ReplOffset:     d.replOff.Load(),
		RetentionFloor: ix.retFloor.Load(),
		Rewrites:       blob,
	}
	if err := durable.CommitManifest(d.dir, m); err != nil {
		d.gate.Unlock()
		durable.RemoveSegment(d.dir, outSeq)
		return false, err
	}
	for _, sh := range ix.shards {
		sh.mu.Lock()
	}
	d.publishSegsLocked(ix, newSegs)
	for i := len(ix.shards) - 1; i >= 0; i-- {
		ix.shards[i].mu.Unlock()
	}
	if fold {
		// Still under the exclusive gate, so no writer can add a fresh entry
		// between the committed blob and this deletion.
		d.pendMu.Lock()
		for g := range d.pending {
			if inMerged(g) {
				delete(d.pending, g)
			}
		}
		d.pendMu.Unlock()
	}
	d.gate.Unlock()
	// Input files are unreferenced by the committed manifest and every reader
	// that could hold the old list has finished (the publication held all
	// shard write locks).
	for _, sm := range run {
		durable.RemoveSegment(d.dir, sm.Seq)
	}
	d.tm.compactions.Inc()
	return true, nil
}

// retainOnce drops every cold segment whose entire stamped time range is
// older than the retention horizon, advancing the retention floor (which
// expires unsorted paging cursors below it) and garbage-collecting pending
// rewrites no kept segment covers. Compaction never changes visible data;
// this does — so the commit brackets an epoch bump, invalidating every
// cached query response that predates the drop.
func (ix *Index) retainOnce(now time.Time) error {
	d := ix.dur
	if d.retention <= 0 {
		return nil
	}
	cutoff := now.UnixNano() - int64(d.retention)
	d.gate.Lock()
	cur := *d.segs.Load()
	base := ix.base.Load()
	var keep, dropped []durable.SegmentMeta
	for _, sm := range cur {
		old := sm.EndRow <= base && !sm.TimeUnknown() &&
			sm.MinTime <= sm.MaxTime && sm.MaxTime < cutoff
		if old {
			dropped = append(dropped, sm)
		} else {
			keep = append(keep, sm)
		}
	}
	if len(dropped) == 0 {
		d.gate.Unlock()
		return nil
	}
	floor := ix.retFloor.Load()
	for _, sm := range dropped {
		if sm.EndRow > floor {
			floor = sm.EndRow
		}
	}
	// A pending rewrite survives only if a kept segment still holds its row;
	// coverage (not membership in this pass's drops) also collects strays
	// from rows dropped in earlier passes.
	covered := func(gid int) bool {
		for _, sm := range keep {
			if int64(gid) >= sm.StartRow && int64(gid) < sm.EndRow {
				return true
			}
		}
		return false
	}
	blob, err := d.pendingBlob(func(gid int) bool { return !covered(gid) })
	if err != nil {
		d.gate.Unlock()
		return err
	}
	m := durable.Manifest{
		Shards:         len(ix.shards),
		WALSeq:         d.walSeq,
		SegmentSeq:     d.segSeq,
		Segments:       keep,
		BaseSeq:        d.baseSeq,
		ReplOffset:     d.replOff.Load(),
		RetentionFloor: floor,
		Rewrites:       blob,
	}
	if err := durable.CommitManifest(d.dir, m); err != nil {
		d.gate.Unlock()
		return err
	}
	ix.epoch.Add(1)
	for _, sh := range ix.shards {
		sh.mu.Lock()
	}
	ix.retFloor.Store(floor)
	d.publishSegsLocked(ix, keep)
	for i := len(ix.shards) - 1; i >= 0; i-- {
		ix.shards[i].mu.Unlock()
	}
	d.pendMu.Lock()
	for g := range d.pending {
		if !covered(g) {
			delete(d.pending, g)
		}
	}
	d.pendMu.Unlock()
	d.gate.Unlock()
	ix.epoch.Add(1)
	for _, sm := range dropped {
		durable.RemoveSegment(d.dir, sm.Seq)
	}
	d.tm.retentionDrops.Add(uint64(len(dropped)))
	return nil
}
