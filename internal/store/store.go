package store

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dsrhaslab/dio-go/internal/event"
	"github.com/dsrhaslab/dio-go/internal/telemetry"
)

// Store is the top-level document store: a set of named indices, one per
// tracing session by convention (the tracer labels each execution with a
// unique session name, §II-F). Constructed with WithDataDir it is durable:
// writes journal to per-index write-ahead logs, background snapshots fold
// the log into columnar segments, and Open recovers the whole state after a
// crash.
type Store struct {
	mu      sync.RWMutex
	indices map[string]*Index
	tm      storeTelemetry

	opts   storeOptions
	dtm    *durTelemetry // nil-safe instruments; non-nil iff durable
	stopCh chan struct{}
	loopWG sync.WaitGroup
	closed atomic.Bool

	// maintMu serializes segment maintenance (compaction + retention) passes:
	// the exported Compact and the background snapshot loop must not overlap,
	// or retention could delete files a concurrent merge reads lock-free.
	maintMu sync.Mutex

	// Replication role: a follower rejects direct writes (they arrive through
	// ReplApply instead) until Promote flips it back to primary. replArmed
	// turns on the per-index tail buffers the shipper reads; it is shared by
	// pointer into every indexDurable so arming is one store-wide store.
	role      atomic.Int32
	replArmed atomic.Bool

	replHealthMu sync.Mutex
	replHealth   []func() ReplHealth
}

// storeTelemetry holds the backend stage's instruments: bulk/search/count
// latency histograms, throughput counters, and the correlation metrics
// recorded by Store.Correlate. All entries live in one registry the server
// exposes on GET /metrics.
type storeTelemetry struct {
	reg       *telemetry.Registry
	bulkNS    *telemetry.Histogram
	searchNS  *telemetry.Histogram
	countNS   *telemetry.Histogram
	updateNS  *telemetry.Histogram
	bulkDocs  *telemetry.Counter
	searches  *telemetry.Counter
	corrRuns  *telemetry.Counter
	corrNS    *telemetry.Histogram
	corrTags  *telemetry.Counter
	corrUpd   *telemetry.Counter
	corrUnres *telemetry.Counter

	// Read-path acceleration: query cache and rollup accounting, shared by
	// every index the store owns.
	cacheHits   *telemetry.Counter
	cacheMisses *telemetry.Counter
	cacheEvicts *telemetry.Counter
	rtm         readTelemetry

	// Follower-side replication accounting (ReplApply).
	replApplied *telemetry.Counter
	replApplyNS *telemetry.Histogram
	replRejects *telemetry.Counter
}

// Open builds a store from functional options. Without WithDataDir it is
// purely in-memory and never fails; with it, existing indices are recovered
// (segment load, then WAL replay) before Open returns, and the background
// fsync and snapshot loops start. Durable stores must be Closed.
func Open(opts ...Option) (*Store, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	s := &Store{indices: make(map[string]*Index), opts: o}
	reg := o.reg
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s.tm = storeTelemetry{
		reg:       reg,
		bulkNS:    reg.Histogram(telemetry.MetricBulkNS, "one bulk indexing call", nil),
		searchNS:  reg.Histogram(telemetry.MetricSearchNS, "one search", nil),
		countNS:   reg.Histogram(telemetry.MetricCountNS, "one count", nil),
		updateNS:  reg.Histogram(telemetry.MetricUpdateNS, "one update-by-query pass", nil),
		bulkDocs:  reg.Counter(telemetry.MetricBulkDocs, "documents indexed through Bulk"),
		searches:  reg.Counter(telemetry.MetricSearches, "searches served"),
		corrRuns:  reg.Counter(telemetry.MetricCorrelateRuns, "correlation passes run"),
		corrNS:    reg.Histogram(telemetry.MetricCorrelateNS, "one full correlation pass", nil),
		corrTags:  reg.Counter(telemetry.MetricCorrelateTags, "file tags resolved to paths"),
		corrUpd:   reg.Counter(telemetry.MetricCorrelateUpdated, "events whose file_path was filled in"),
		corrUnres: reg.Counter(telemetry.MetricCorrelateUnresolved, "tagged events left without a path"),
		cacheHits: reg.Counter(telemetry.MetricQueryCacheHits, "searches answered from the query cache"),
		cacheMisses: reg.Counter(telemetry.MetricQueryCacheMisses,
			"searches that ran and populated the query cache"),
		cacheEvicts: reg.Counter(telemetry.MetricQueryCacheEvictions,
			"query cache entries dropped (LRU or stale epoch)"),
		replApplied: reg.Counter(telemetry.MetricReplAppliedRecs, "replication records applied on this follower"),
		replApplyNS: reg.Histogram(telemetry.MetricReplApplyNS, "one replication frame apply", nil),
		replRejects: reg.Counter(telemetry.MetricReplSeqRejects, "out-of-sequence replication pushes rejected"),
		rtm: readTelemetry{
			rollupHits:     reg.Counter(telemetry.MetricRollupAggHits, "agg partials served from rollups"),
			rollupMisses:   reg.Counter(telemetry.MetricRollupAggMisses, "planned rollup serves that fell back to scans"),
			rollupRebuilds: reg.Counter(telemetry.MetricRollupRebuilds, "shard rollups rebuilt after invalidation"),
			segOpened:      reg.Counter(telemetry.MetricSegmentsOpened, "cold segments opened by time-bounded queries"),
			segPruned:      reg.Counter(telemetry.MetricSegmentsPruned, "cold segments skipped by time-range pruning"),
		},
	}
	reg.GaugeFunc(telemetry.MetricQueryCacheEntries, "live query cache entries across indices",
		s.queryCacheEntries)
	// Shard imbalance is a pull gauge: max/mean shard doc count across all
	// indices (1.0 = perfectly balanced; the round-robin writer should keep
	// it there). Evaluated only at snapshot time.
	reg.GaugeFunc(telemetry.MetricShardImbalance, "max/mean shard doc count across indices",
		s.shardImbalance)
	reg.GaugeFunc(telemetry.MetricReplRole, "replication role (0 primary, 1 follower)",
		func() float64 { return float64(s.role.Load()) })
	if o.dataDir == "" {
		return s, nil
	}
	s.dtm = newDurTelemetry(reg)
	reg.GaugeFunc(telemetry.MetricSegments, "live committed segments across durable indices",
		s.segmentCount)
	if err := os.MkdirAll(o.dataDir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create data dir: %w", err)
	}
	if err := s.loadDataDir(); err != nil {
		return nil, err
	}
	s.stopCh = make(chan struct{})
	if o.fsync == FsyncInterval {
		s.loopWG.Add(1)
		go s.fsyncLoop()
	}
	if o.snapshotEvery > 0 {
		s.loopWG.Add(1)
		go s.snapshotLoop()
	}
	return s, nil
}

// New is the legacy constructor, kept so pre-options call sites compile
// unchanged.
//
// Deprecated: use Open, which reports durability errors instead of
// panicking on them. New without options (an in-memory store) never
// panics.
func New(opts ...Option) *Store {
	s, err := Open(opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// Telemetry returns the store's self-accounting registry, which the HTTP
// server exposes on GET /metrics.
func (s *Store) Telemetry() *telemetry.Registry { return s.tm.reg }

// observeNS times fn and records the elapsed nanoseconds in h.
func observeNS(h *telemetry.Histogram, fn func()) {
	start := time.Now()
	fn()
	h.Observe(float64(time.Since(start)))
}

// shardImbalance reports the worst max/mean shard doc-count ratio across
// indices (0 when the store is empty).
func (s *Store) shardImbalance() float64 {
	indices := s.allIndices()
	worst := 0.0
	for _, ix := range indices {
		counts := ix.ShardDocCounts()
		total, max := 0, 0
		for _, c := range counts {
			total += c
			if c > max {
				max = c
			}
		}
		if total == 0 {
			continue
		}
		mean := float64(total) / float64(len(counts))
		if r := float64(max) / mean; r > worst {
			worst = r
		}
	}
	return worst
}

// queryCacheEntries sums live cache entries across indices (the entries
// gauge; evaluated at snapshot time only).
func (s *Store) queryCacheEntries() float64 {
	n := 0
	for _, ix := range s.allIndices() {
		if ix.cache != nil {
			n += ix.cache.size()
		}
	}
	return float64(n)
}

// attachReadPath wires a new or recovered index into the store's read-path
// acceleration: the shared telemetry counters and, when enabled, a private
// query cache.
func (s *Store) attachReadPath(ix *Index) {
	ix.rtm = s.tm.rtm
	if s.opts.cacheEntries > 0 {
		ix.cache = newQueryCache(s.opts.cacheEntries,
			s.tm.cacheHits, s.tm.cacheMisses, s.tm.cacheEvicts)
	}
}

// registerIndexGauge exposes the index's live doc count as a labeled pull
// gauge; the caller holds the store lock or is still single-threaded setup.
func (s *Store) registerIndexGauge(name string, ix *Index) {
	s.tm.reg.GaugeFunc(
		telemetry.MetricDocs+`{index="`+name+`"}`,
		"live documents in the index",
		func() float64 { return float64(ix.Len()) },
	)
}

// indexOrCreate returns the named index, creating it on first use (like
// Elasticsearch's dynamic index creation on first write). The common case —
// the index already exists — takes only the read lock, so concurrent bulk
// writers don't serialize on the store lock before even reaching the index.
// On a durable store, creation sets up the index's directory and WAL.
func (s *Store) indexOrCreate(name string) (*Index, error) {
	s.mu.RLock()
	ix, ok := s.indices[name]
	s.mu.RUnlock()
	if ok {
		return ix, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ix, ok = s.indices[name]
	if ok {
		return ix, nil
	}
	if s.opts.dataDir != "" {
		var err error
		ix, err = s.newDurableIndex(name)
		if err != nil {
			return nil, err
		}
	} else {
		ix = newIndexSized(name, s.opts.shards, s.opts.rollupBase)
	}
	s.attachReadPath(ix)
	s.indices[name] = ix
	s.registerIndexGauge(name, ix)
	return ix, nil
}

// IndexOrCreate is the legacy form of indexOrCreate.
//
// Deprecated: route writes through Bulk/BulkEvents, which surface durable
// index-creation errors; this wrapper panics on them (it cannot fail on an
// in-memory store).
func (s *Store) IndexOrCreate(name string) *Index {
	ix, err := s.indexOrCreate(name)
	if err != nil {
		panic(err)
	}
	return ix
}

// GetIndex returns the named index if it exists.
func (s *Store) GetIndex(name string) (*Index, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ix, ok := s.indices[name]
	return ix, ok
}

// DeleteIndex removes the named index, including its on-disk state on a
// durable store.
func (s *Store) DeleteIndex(name string) {
	s.mu.Lock()
	ix, ok := s.indices[name]
	delete(s.indices, name)
	s.mu.Unlock()
	if ok && ix.dur != nil {
		_ = ix.dur.close()
		_ = removeIndexDir(ix.dur.dir)
	}
}

// Indices lists index names in sorted order.
func (s *Store) Indices() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.indices))
	for n := range s.indices {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Bulk indexes docs into the named index. A single index lookup resolves
// the handle (read-locked fast path); the documents then take only the
// per-shard index locks. On a durable store the batch is journaled before
// it is applied.
func (s *Store) Bulk(ctx context.Context, index string, docs []Document) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.Role() == RoleFollower {
		return ErrReadOnlyFollower
	}
	ix, err := s.indexOrCreate(index)
	if err != nil {
		return err
	}
	start := time.Now()
	err = ix.AddBulk(docs)
	s.tm.bulkNS.Observe(float64(time.Since(start)))
	if err != nil {
		return err
	}
	s.tm.bulkDocs.Add(uint64(len(docs)))
	return nil
}

// BulkEvents indexes typed events into the named index through the typed
// fast path: no Document is materialized anywhere between the wire and the
// shard's columnar storage (the durable journal uses the same binary frame
// the wire does). The events slice is not retained.
func (s *Store) BulkEvents(ctx context.Context, index string, events []event.Event) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.Role() == RoleFollower {
		return ErrReadOnlyFollower
	}
	ix, err := s.indexOrCreate(index)
	if err != nil {
		return err
	}
	start := time.Now()
	err = ix.AddEvents(events)
	s.tm.bulkNS.Observe(float64(time.Since(start)))
	if err != nil {
		return err
	}
	s.tm.bulkDocs.Add(uint64(len(events)))
	return nil
}

// bulkEventsFrame is BulkEvents for a batch that arrived as a wire frame:
// the already-encoded payload is journaled verbatim instead of re-encoding
// the decoded events, so the HTTP ingest path pays for the codec once.
// owned reports whether the frame's buffer is surrendered (see
// replWantsFrames and journalApply).
func (s *Store) bulkEventsFrame(ctx context.Context, index string, frame []byte, owned bool, events []event.Event) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.Role() == RoleFollower {
		return ErrReadOnlyFollower
	}
	ix, err := s.indexOrCreate(index)
	if err != nil {
		return err
	}
	start := time.Now()
	err = ix.addEventsFrame(frame, owned, events)
	s.tm.bulkNS.Observe(float64(time.Since(start)))
	if err != nil {
		return err
	}
	s.tm.bulkDocs.Add(uint64(len(events)))
	return nil
}

// IndexStats summarizes one index for the _stats API.
type IndexStats struct {
	Index  string `json:"index"`
	Docs   int    `json:"docs"`
	Shards int    `json:"shards"`
	// Rows is the number of rows ever placed — the next local row id this
	// node would assign, unshrunk by retention. A cluster coordinator seeds
	// its global row counter from the sum of its partitions' Rows, which
	// reproduces the next cluster-global id (WAL replay and follower
	// bootstrap both restore the counter, so the figure survives restarts
	// and failovers).
	Rows int64 `json:"rows"`
}

// Stats reports the named index's document and shard counts.
func (s *Store) Stats(index string) (IndexStats, error) {
	ix, ok := s.GetIndex(index)
	if !ok {
		return IndexStats{}, fmt.Errorf("index %q not found", index)
	}
	return IndexStats{
		Index:  ix.Name(),
		Docs:   ix.Len(),
		Shards: ix.NumShards(),
		Rows:   int64(ix.rr.Load()),
	}, nil
}

// Search runs req against the named index. Cancelling ctx stops the shard
// fan-out between shards.
func (s *Store) Search(ctx context.Context, index string, req SearchRequest) (SearchResponse, error) {
	ix, ok := s.GetIndex(index)
	if !ok {
		return SearchResponse{}, fmt.Errorf("index %q not found", index)
	}
	start := time.Now()
	resp, err := ix.cachedSearchCtx(ctx, req)
	s.tm.searchNS.Observe(float64(time.Since(start)))
	if err != nil {
		return SearchResponse{}, err
	}
	s.tm.searches.Inc()
	return resp, nil
}

// SearchEvents runs req against the named index and returns typed hits.
func (s *Store) SearchEvents(ctx context.Context, index string, req SearchRequest) (EventsResult, error) {
	ix, ok := s.GetIndex(index)
	if !ok {
		return EventsResult{}, fmt.Errorf("index %q not found", index)
	}
	start := time.Now()
	res, err := ix.cachedSearchEventsCtx(ctx, req)
	s.tm.searchNS.Observe(float64(time.Since(start)))
	if err != nil {
		return EventsResult{}, err
	}
	s.tm.searches.Inc()
	return res, nil
}

// Count counts documents matching q in the named index.
func (s *Store) Count(ctx context.Context, index string, q Query) (int, error) {
	ix, ok := s.GetIndex(index)
	if !ok {
		return 0, fmt.Errorf("index %q not found", index)
	}
	start := time.Now()
	n, err := ix.countCtx(ctx, q)
	s.tm.countNS.Observe(float64(time.Since(start)))
	return n, err
}

// ReasonUpdateBeyondRetention is the machine-readable reason string the API
// returns alongside a 409 when an update cannot reach retention-evicted
// rows; remote clients round-trip it back to ErrUpdateBeyondRetention.
const ReasonUpdateBeyondRetention = "update_beyond_retention"

// ErrUpdateBeyondRetention rejects an update-by-query (or a correlation
// pass, which rewrites file paths through the same machinery) on an index
// whose retention policy has already evicted rows into cold segments: the
// update scan walks hot shard memory only (DESIGN.md §15), so running it
// would silently rewrite a subset of the matched rows. The HTTP layer maps
// it to 409 Conflict with reason "update_beyond_retention" — a permanent
// condition for this index state, not worth a retry.
var ErrUpdateBeyondRetention = fmt.Errorf(
	"store: update-by-query cannot reach rows beyond the retention horizon (cold rows are immutable)")

// UpdateByQuery applies fn to every document matching q in the named index
// and returns the number of updated documents; on a durable store the
// effects are journaled. fn runs concurrently across shards (never for the
// same document). On an index with retention-evicted cold rows the update is
// refused with ErrUpdateBeyondRetention rather than silently rewriting only
// the hot subset.
func (s *Store) UpdateByQuery(ctx context.Context, index string, q Query, fn func(Document) bool) (int, error) {
	if s.Role() == RoleFollower {
		return 0, ErrReadOnlyFollower
	}
	ix, ok := s.GetIndex(index)
	if !ok {
		return 0, fmt.Errorf("index %q not found", index)
	}
	if ix.coldRows.Load() > 0 {
		return 0, ErrUpdateBeyondRetention
	}
	var (
		n   int
		err error
	)
	observeNS(s.tm.updateNS, func() {
		n, err = ix.updateByQueryCtx(ctx, q, fn)
	})
	return n, err
}
