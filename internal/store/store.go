package store

import (
	"fmt"
	"sort"
	"sync"
)

// Store is the top-level document store: a set of named indices, one per
// tracing session by convention (the tracer labels each execution with a
// unique session name, §II-F).
type Store struct {
	mu      sync.RWMutex
	indices map[string]*Index
}

// New creates an empty store.
func New() *Store {
	return &Store{indices: make(map[string]*Index)}
}

// IndexOrCreate returns the named index, creating it on first use (like
// Elasticsearch's dynamic index creation on first write).
func (s *Store) IndexOrCreate(name string) *Index {
	s.mu.Lock()
	defer s.mu.Unlock()
	ix, ok := s.indices[name]
	if !ok {
		ix = NewIndex(name)
		s.indices[name] = ix
	}
	return ix
}

// GetIndex returns the named index if it exists.
func (s *Store) GetIndex(name string) (*Index, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ix, ok := s.indices[name]
	return ix, ok
}

// DeleteIndex removes the named index.
func (s *Store) DeleteIndex(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.indices, name)
}

// Indices lists index names in sorted order.
func (s *Store) Indices() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.indices))
	for n := range s.indices {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Bulk indexes docs into the named index.
func (s *Store) Bulk(index string, docs []Document) error {
	s.IndexOrCreate(index).AddBulk(docs)
	return nil
}

// Search runs req against the named index.
func (s *Store) Search(index string, req SearchRequest) (SearchResponse, error) {
	ix, ok := s.GetIndex(index)
	if !ok {
		return SearchResponse{}, fmt.Errorf("index %q not found", index)
	}
	return ix.Search(req), nil
}

// Count counts documents matching q in the named index.
func (s *Store) Count(index string, q Query) (int, error) {
	ix, ok := s.GetIndex(index)
	if !ok {
		return 0, fmt.Errorf("index %q not found", index)
	}
	return ix.Count(q), nil
}
