package store

import (
	"fmt"
	"sort"
	"sync"
)

// Store is the top-level document store: a set of named indices, one per
// tracing session by convention (the tracer labels each execution with a
// unique session name, §II-F).
type Store struct {
	mu      sync.RWMutex
	indices map[string]*Index
}

// New creates an empty store.
func New() *Store {
	return &Store{indices: make(map[string]*Index)}
}

// IndexOrCreate returns the named index, creating it on first use (like
// Elasticsearch's dynamic index creation on first write). The common case —
// the index already exists — takes only the read lock, so concurrent bulk
// writers don't serialize on the store lock before even reaching the index.
func (s *Store) IndexOrCreate(name string) *Index {
	s.mu.RLock()
	ix, ok := s.indices[name]
	s.mu.RUnlock()
	if ok {
		return ix
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ix, ok = s.indices[name]
	if !ok {
		ix = NewIndex(name)
		s.indices[name] = ix
	}
	return ix
}

// GetIndex returns the named index if it exists.
func (s *Store) GetIndex(name string) (*Index, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ix, ok := s.indices[name]
	return ix, ok
}

// DeleteIndex removes the named index.
func (s *Store) DeleteIndex(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.indices, name)
}

// Indices lists index names in sorted order.
func (s *Store) Indices() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.indices))
	for n := range s.indices {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Bulk indexes docs into the named index. A single index lookup resolves
// the handle (read-locked fast path); the documents then take only the
// per-shard index locks.
func (s *Store) Bulk(index string, docs []Document) error {
	s.IndexOrCreate(index).AddBulk(docs)
	return nil
}

// IndexStats summarizes one index for the _stats API.
type IndexStats struct {
	Index  string `json:"index"`
	Docs   int    `json:"docs"`
	Shards int    `json:"shards"`
}

// Stats reports the named index's document and shard counts.
func (s *Store) Stats(index string) (IndexStats, error) {
	ix, ok := s.GetIndex(index)
	if !ok {
		return IndexStats{}, fmt.Errorf("index %q not found", index)
	}
	return IndexStats{Index: ix.Name(), Docs: ix.Len(), Shards: ix.NumShards()}, nil
}

// Search runs req against the named index.
func (s *Store) Search(index string, req SearchRequest) (SearchResponse, error) {
	ix, ok := s.GetIndex(index)
	if !ok {
		return SearchResponse{}, fmt.Errorf("index %q not found", index)
	}
	return ix.Search(req), nil
}

// Count counts documents matching q in the named index.
func (s *Store) Count(index string, q Query) (int, error) {
	ix, ok := s.GetIndex(index)
	if !ok {
		return 0, fmt.Errorf("index %q not found", index)
	}
	return ix.Count(q), nil
}
