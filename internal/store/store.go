package store

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/dsrhaslab/dio-go/internal/event"
	"github.com/dsrhaslab/dio-go/internal/telemetry"
)

// Store is the top-level document store: a set of named indices, one per
// tracing session by convention (the tracer labels each execution with a
// unique session name, §II-F).
type Store struct {
	mu      sync.RWMutex
	indices map[string]*Index
	tm      storeTelemetry
}

// storeTelemetry holds the backend stage's instruments: bulk/search/count
// latency histograms, throughput counters, and the correlation metrics
// recorded by Store.Correlate. All entries live in one registry the server
// exposes on GET /metrics.
type storeTelemetry struct {
	reg       *telemetry.Registry
	bulkNS    *telemetry.Histogram
	searchNS  *telemetry.Histogram
	countNS   *telemetry.Histogram
	updateNS  *telemetry.Histogram
	bulkDocs  *telemetry.Counter
	searches  *telemetry.Counter
	corrRuns  *telemetry.Counter
	corrNS    *telemetry.Histogram
	corrTags  *telemetry.Counter
	corrUpd   *telemetry.Counter
	corrUnres *telemetry.Counter
}

// New creates an empty store.
func New() *Store {
	s := &Store{indices: make(map[string]*Index)}
	reg := telemetry.NewRegistry()
	s.tm = storeTelemetry{
		reg:       reg,
		bulkNS:    reg.Histogram(telemetry.MetricBulkNS, "one bulk indexing call", nil),
		searchNS:  reg.Histogram(telemetry.MetricSearchNS, "one search", nil),
		countNS:   reg.Histogram(telemetry.MetricCountNS, "one count", nil),
		updateNS:  reg.Histogram(telemetry.MetricUpdateNS, "one update-by-query pass", nil),
		bulkDocs:  reg.Counter(telemetry.MetricBulkDocs, "documents indexed through Bulk"),
		searches:  reg.Counter(telemetry.MetricSearches, "searches served"),
		corrRuns:  reg.Counter(telemetry.MetricCorrelateRuns, "correlation passes run"),
		corrNS:    reg.Histogram(telemetry.MetricCorrelateNS, "one full correlation pass", nil),
		corrTags:  reg.Counter(telemetry.MetricCorrelateTags, "file tags resolved to paths"),
		corrUpd:   reg.Counter(telemetry.MetricCorrelateUpdated, "events whose file_path was filled in"),
		corrUnres: reg.Counter(telemetry.MetricCorrelateUnresolved, "tagged events left without a path"),
	}
	// Shard imbalance is a pull gauge: max/mean shard doc count across all
	// indices (1.0 = perfectly balanced; the round-robin writer should keep
	// it there). Evaluated only at snapshot time.
	reg.GaugeFunc(telemetry.MetricShardImbalance, "max/mean shard doc count across indices",
		s.shardImbalance)
	return s
}

// Telemetry returns the store's self-accounting registry, which the HTTP
// server exposes on GET /metrics.
func (s *Store) Telemetry() *telemetry.Registry { return s.tm.reg }

// observeNS times fn and records the elapsed nanoseconds in h.
func observeNS(h *telemetry.Histogram, fn func()) {
	start := time.Now()
	fn()
	h.Observe(float64(time.Since(start)))
}

// shardImbalance reports the worst max/mean shard doc-count ratio across
// indices (0 when the store is empty).
func (s *Store) shardImbalance() float64 {
	s.mu.RLock()
	indices := make([]*Index, 0, len(s.indices))
	for _, ix := range s.indices {
		indices = append(indices, ix)
	}
	s.mu.RUnlock()
	worst := 0.0
	for _, ix := range indices {
		counts := ix.ShardDocCounts()
		total, max := 0, 0
		for _, c := range counts {
			total += c
			if c > max {
				max = c
			}
		}
		if total == 0 {
			continue
		}
		mean := float64(total) / float64(len(counts))
		if r := float64(max) / mean; r > worst {
			worst = r
		}
	}
	return worst
}

// IndexOrCreate returns the named index, creating it on first use (like
// Elasticsearch's dynamic index creation on first write). The common case —
// the index already exists — takes only the read lock, so concurrent bulk
// writers don't serialize on the store lock before even reaching the index.
func (s *Store) IndexOrCreate(name string) *Index {
	s.mu.RLock()
	ix, ok := s.indices[name]
	s.mu.RUnlock()
	if ok {
		return ix
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ix, ok = s.indices[name]
	if !ok {
		ix = NewIndex(name)
		s.indices[name] = ix
		// Per-index live doc count as a pull gauge; evaluated only at
		// snapshot time, so index creation stays off the hot path's cost.
		s.tm.reg.GaugeFunc(
			telemetry.MetricDocs+`{index="`+name+`"}`,
			"live documents in the index",
			func() float64 { return float64(ix.Len()) },
		)
	}
	return ix
}

// GetIndex returns the named index if it exists.
func (s *Store) GetIndex(name string) (*Index, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ix, ok := s.indices[name]
	return ix, ok
}

// DeleteIndex removes the named index.
func (s *Store) DeleteIndex(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.indices, name)
}

// Indices lists index names in sorted order.
func (s *Store) Indices() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.indices))
	for n := range s.indices {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Bulk indexes docs into the named index. A single index lookup resolves
// the handle (read-locked fast path); the documents then take only the
// per-shard index locks.
func (s *Store) Bulk(index string, docs []Document) error {
	start := time.Now()
	s.IndexOrCreate(index).AddBulk(docs)
	s.tm.bulkNS.Observe(float64(time.Since(start)))
	s.tm.bulkDocs.Add(uint64(len(docs)))
	return nil
}

// BulkEvents indexes typed events into the named index through the typed
// fast path: no Document is materialized anywhere between the wire and the
// shard's columnar storage. The events slice is not retained.
func (s *Store) BulkEvents(index string, events []event.Event) error {
	start := time.Now()
	s.IndexOrCreate(index).AddEvents(events)
	s.tm.bulkNS.Observe(float64(time.Since(start)))
	s.tm.bulkDocs.Add(uint64(len(events)))
	return nil
}

// IndexStats summarizes one index for the _stats API.
type IndexStats struct {
	Index  string `json:"index"`
	Docs   int    `json:"docs"`
	Shards int    `json:"shards"`
}

// Stats reports the named index's document and shard counts.
func (s *Store) Stats(index string) (IndexStats, error) {
	ix, ok := s.GetIndex(index)
	if !ok {
		return IndexStats{}, fmt.Errorf("index %q not found", index)
	}
	return IndexStats{Index: ix.Name(), Docs: ix.Len(), Shards: ix.NumShards()}, nil
}

// Search runs req against the named index.
func (s *Store) Search(index string, req SearchRequest) (SearchResponse, error) {
	ix, ok := s.GetIndex(index)
	if !ok {
		return SearchResponse{}, fmt.Errorf("index %q not found", index)
	}
	start := time.Now()
	resp := ix.Search(req)
	s.tm.searchNS.Observe(float64(time.Since(start)))
	s.tm.searches.Inc()
	return resp, nil
}

// SearchEvents runs req against the named index and returns typed hits.
func (s *Store) SearchEvents(index string, req SearchRequest) (EventsResult, error) {
	ix, ok := s.GetIndex(index)
	if !ok {
		return EventsResult{}, fmt.Errorf("index %q not found", index)
	}
	start := time.Now()
	res := ix.SearchEvents(req)
	s.tm.searchNS.Observe(float64(time.Since(start)))
	s.tm.searches.Inc()
	return res, nil
}

// Count counts documents matching q in the named index.
func (s *Store) Count(index string, q Query) (int, error) {
	ix, ok := s.GetIndex(index)
	if !ok {
		return 0, fmt.Errorf("index %q not found", index)
	}
	start := time.Now()
	n := ix.Count(q)
	s.tm.countNS.Observe(float64(time.Since(start)))
	return n, nil
}
