package store

import "sync/atomic"

// CorrelationResult summarizes one run of the file-path correlation
// algorithm (§II-C): how many file tags resolved to paths, and how many
// events remained without a resolvable path (the §III-D coverage metric:
// DIO leaves at most ~5% of events unresolved, versus 45% for Sysdig).
type CorrelationResult struct {
	// TagsResolved is the number of distinct file tags that mapped to a path.
	TagsResolved int `json:"tags_resolved"`
	// EventsUpdated is the number of events whose file_path was filled in.
	EventsUpdated int `json:"events_updated"`
	// EventsUnresolved is the number of events carrying a file tag whose
	// path could not be determined (their open event was dropped or not
	// captured).
	EventsUnresolved int `json:"events_unresolved"`
	// EventsWithTag is the total number of events carrying a file tag.
	EventsWithTag int `json:"events_with_tag"`
}

// UnresolvedFraction returns the share of tagged events without a path.
func (r CorrelationResult) UnresolvedFraction() float64 {
	if r.EventsWithTag == 0 {
		return 0
	}
	return float64(r.EventsUnresolved) / float64(r.EventsWithTag)
}

// openSyscalls are the syscalls that carry both a path argument and a file
// tag, anchoring the tag→path mapping.
var openSyscalls = []any{"open", "openat", "creat"}

// CorrelateFilePaths implements DIO's custom correlation algorithm using
// the store's query and update features:
//
//  1. Search events whose syscall is an open variant and that carry both a
//     file tag and a kernel-resolved path; build the tag→path dictionary.
//  2. Update-by-query every event that carries a file tag but no file_path,
//     setting file_path from the dictionary.
//
// It can run while the tracer is still indexing (near-real-time pipeline)
// or on demand after the session completes (§II-E).
func CorrelateFilePaths(ix *Index, session string) CorrelationResult {
	var res CorrelationResult

	sessionFilter := func() []Query {
		if session == "" {
			return nil
		}
		return []Query{Term(FieldSession, session)}
	}

	// Step 1: harvest tag→path anchors from open-like events. Path-based
	// non-open syscalls (stat, unlink, ...) also carry kernel paths and
	// strengthen the dictionary.
	anchors := ix.Search(SearchRequest{
		Query: Query{Bool: &BoolQuery{
			Must: append(sessionFilter(),
				Exists(FieldFileTag),
				Exists(FieldKernelPath),
			),
		}},
		Size: -1,
	})
	tagToPath := make(map[string]string)
	for _, d := range anchors.Hits {
		tag := str(d[FieldFileTag])
		if tag == "" {
			continue
		}
		if _, seen := tagToPath[tag]; !seen {
			tagToPath[tag] = str(d[FieldKernelPath])
		}
	}
	res.TagsResolved = len(tagToPath)

	// Step 2: rewrite tagged events without a path. UpdateByQuery fans out
	// across index shards, so the closure runs concurrently; the counters
	// are shared and must be updated atomically. tagToPath is read-only here.
	q := Query{Bool: &BoolQuery{
		Must: append(sessionFilter(), Exists(FieldFileTag)),
	}}
	var withTag, updated, unresolved atomic.Int64
	ix.UpdateByQuery(q, func(d Document) bool {
		withTag.Add(1)
		if str(d[FieldFilePath]) != "" {
			return false
		}
		if kp := str(d[FieldKernelPath]); kp != "" {
			d[FieldFilePath] = kp
			updated.Add(1)
			return true
		}
		path, ok := tagToPath[str(d[FieldFileTag])]
		if !ok {
			unresolved.Add(1)
			return false
		}
		d[FieldFilePath] = path
		updated.Add(1)
		return true
	})
	res.EventsWithTag = int(withTag.Load())
	res.EventsUpdated = int(updated.Load())
	res.EventsUnresolved = int(unresolved.Load())
	return res
}
