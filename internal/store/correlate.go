package store

import (
	"context"
	"sync/atomic"
)

// CorrelationResult summarizes one run of the file-path correlation
// algorithm (§II-C): how many file tags resolved to paths, and how many
// events remained without a resolvable path (the §III-D coverage metric:
// DIO leaves at most ~5% of events unresolved, versus 45% for Sysdig).
//
// The accounting closes: EventsUpdated + EventsUnresolved +
// EventsAlreadyResolved == EventsWithTag. Every tagged event lands in
// exactly one of the three outcome counters.
type CorrelationResult struct {
	// TagsResolved is the number of distinct file tags that mapped to a path.
	TagsResolved int `json:"tags_resolved"`
	// EventsUpdated is the number of events whose file_path was filled in.
	EventsUpdated int `json:"events_updated"`
	// EventsUnresolved is the number of events carrying a file tag whose
	// path could not be determined (their open event was dropped or not
	// captured).
	EventsUnresolved int `json:"events_unresolved"`
	// EventsAlreadyResolved is the number of tagged events that entered the
	// pass with a file_path already set (typically filled by an earlier
	// run — correlation is idempotent).
	EventsAlreadyResolved int `json:"events_already_resolved"`
	// EventsWithTag is the total number of events carrying a file tag.
	EventsWithTag int `json:"events_with_tag"`
}

// UnresolvedFraction returns the share of tagged events without a path.
func (r CorrelationResult) UnresolvedFraction() float64 {
	if r.EventsWithTag == 0 {
		return 0
	}
	return float64(r.EventsUnresolved) / float64(r.EventsWithTag)
}

// openSyscalls are the syscalls that carry both a path argument and a file
// tag, anchoring the tag→path mapping. They are the primary anchor source;
// path-carrying non-open syscalls (stat, unlink, ...) are consulted only as
// a second-pass fallback for tags no open variant resolved.
var openSyscalls = []any{"open", "openat", "creat"}

// anchor is one tag→path candidate with the evidence needed to pick a
// deterministic winner.
type anchor struct {
	path    string
	enterNS float64
	ok      bool // enterNS was present and numeric
}

// better reports whether candidate c should replace cur: the earliest
// FieldTimeEnter anchor wins, with the lexicographically smaller path as the
// tie-break, so the dictionary is independent of shard-merge order.
// Anchors without a usable timestamp lose to any timestamped anchor.
func (c anchor) better(cur anchor) bool {
	switch {
	case c.ok != cur.ok:
		return c.ok
	case c.ok && c.enterNS != cur.enterNS:
		return c.enterNS < cur.enterNS
	default:
		return c.path < cur.path
	}
}

// harvestAnchors folds one anchor search's hits into the dictionary,
// keeping the winning anchor per tag under the deterministic order above.
func harvestAnchors(dict map[string]anchor, hits []Document) {
	for _, d := range hits {
		tag := str(d[FieldFileTag])
		path := str(d[FieldKernelPath])
		if tag == "" || path == "" {
			continue
		}
		enterNS, ok := numeric(d[FieldTimeEnter])
		c := anchor{path: path, enterNS: enterNS, ok: ok}
		if cur, seen := dict[tag]; !seen || c.better(cur) {
			dict[tag] = c
		}
	}
}

// CorrelateFilePaths implements DIO's custom correlation algorithm using
// the store's query and update features:
//
//  1. Search open-variant events (open/openat/creat) that carry both a file
//     tag and a kernel-resolved path; build the tag→path dictionary. Per
//     tag the anchor with the earliest FieldTimeEnter wins (path string as
//     tie-break), so the dictionary is deterministic under any shard count
//     and merge order — the inode-reuse shape of the Fluent Bit case study
//     (§III-B) depends on the first open of a tag naming it.
//  2. Fallback: tags no open variant anchored (the open was dropped or
//     pre-dates the session) are resolved from any other path-carrying
//     tagged event (stat, unlink, ...), under the same earliest-wins rule.
//  3. Update-by-query every event that carries a file tag but no file_path,
//     setting file_path from the dictionary.
//
// It can run while the tracer is still indexing (near-real-time pipeline)
// or on demand after the session completes (§II-E).
func CorrelateFilePaths(ix *Index, session string) CorrelationResult {
	res, _ := correlateFilePaths(context.Background(), ix, session, nil)
	return res
}

func correlateFilePaths(ctx context.Context, ix *Index, session string, tm *storeTelemetry) (CorrelationResult, error) {
	var res CorrelationResult

	sessionFilter := func() []Query {
		if session == "" {
			return nil
		}
		return []Query{Term(FieldSession, session)}
	}

	// Step 1: harvest tag→path anchors from open-like events only — the
	// syscalls whose path argument names the file the tag identifies.
	dict := make(map[string]anchor)
	openAnchors, err := ix.searchCtx(ctx, SearchRequest{
		Query: Query{Bool: &BoolQuery{
			Must: append(sessionFilter(),
				Terms(FieldSyscall, openSyscalls...),
				Exists(FieldFileTag),
				Exists(FieldKernelPath),
			),
		}},
		Size: -1,
	})
	if err != nil {
		return res, err
	}
	harvestAnchors(dict, openAnchors.Hits)

	// Step 2 (fallback): for tags without an open anchor, any path-carrying
	// tagged event still names the file; weaker evidence, so it never
	// overrides an open anchor.
	fallback, err := ix.searchCtx(ctx, SearchRequest{
		Query: Query{Bool: &BoolQuery{
			Must: append(sessionFilter(),
				Exists(FieldFileTag),
				Exists(FieldKernelPath),
			),
			MustNot: []Query{Terms(FieldSyscall, openSyscalls...)},
		}},
		Size: -1,
	})
	if err != nil {
		return res, err
	}
	fallbackDict := make(map[string]anchor)
	harvestAnchors(fallbackDict, fallback.Hits)
	for tag, c := range fallbackDict {
		if _, seen := dict[tag]; !seen {
			dict[tag] = c
		}
	}

	tagToPath := make(map[string]string, len(dict))
	for tag, c := range dict {
		tagToPath[tag] = c.path
	}
	res.TagsResolved = len(tagToPath)

	// Step 3: rewrite tagged events without a path. UpdateByQuery fans out
	// across index shards, so the closure runs concurrently; the counters
	// are shared and must be updated atomically. tagToPath is read-only here.
	q := Query{Bool: &BoolQuery{
		Must: append(sessionFilter(), Exists(FieldFileTag)),
	}}
	var withTag, updated, unresolved, already atomic.Int64
	var ubqErr error
	updateByQuery := func() {
		_, ubqErr = ix.updateByQueryCtx(ctx, q, func(d Document) bool {
			withTag.Add(1)
			if str(d[FieldFilePath]) != "" {
				already.Add(1)
				return false
			}
			if kp := str(d[FieldKernelPath]); kp != "" {
				d[FieldFilePath] = kp
				updated.Add(1)
				return true
			}
			path, ok := tagToPath[str(d[FieldFileTag])]
			if !ok {
				unresolved.Add(1)
				return false
			}
			d[FieldFilePath] = path
			updated.Add(1)
			return true
		})
	}
	if tm != nil {
		observeNS(tm.updateNS, updateByQuery)
	} else {
		updateByQuery()
	}
	res.EventsWithTag = int(withTag.Load())
	res.EventsUpdated = int(updated.Load())
	res.EventsUnresolved = int(unresolved.Load())
	res.EventsAlreadyResolved = int(already.Load())
	return res, ubqErr
}
