package store

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentStress hammers one sharded index with concurrent bulk
// writers, single-doc writers, searchers, aggregators, counters, and an
// update-by-query loop — the contention pattern of the real pipeline, where
// drain workers bulk-index while dashboards query and the correlation
// algorithm rewrites documents. Run under -race; the invariants are:
// no lost documents, globally unique doc ids, and consistent totals.
func TestConcurrentStress(t *testing.T) {
	const (
		writers       = 4
		docsPerWriter = 1500
		batch         = 64
	)
	ix := NewIndexWithShards("stress", 8)

	syscalls := []string{"read", "write", "openat", "close", "fsync"}
	mkdoc := func(writer, i int) Document {
		return Document{
			"session":       "stress",
			"writer":        fmt.Sprintf("w%d", writer),
			"syscall":       syscalls[i%len(syscalls)],
			"time_enter_ns": int64(i) * 1000,
			"duration_ns":   float64(i%97) + 1,
		}
	}

	var (
		writeWG, readWG sync.WaitGroup
		done            atomic.Bool
		idMu            sync.Mutex
		seenIDs         []int
	)

	// Half the writers index one document at a time and record the returned
	// global ids; the other half go through AddBulk like the tracer does.
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			if w%2 == 0 {
				var local []int
				for i := 0; i < docsPerWriter; i++ {
					id, err := ix.Add(mkdoc(w, i))
					if err != nil {
						t.Errorf("add: %v", err)
						return
					}
					local = append(local, id)
				}
				idMu.Lock()
				seenIDs = append(seenIDs, local...)
				idMu.Unlock()
				return
			}
			for i := 0; i < docsPerWriter; i += batch {
				end := i + batch
				if end > docsPerWriter {
					end = docsPerWriter
				}
				docs := make([]Document, 0, end-i)
				for j := i; j < end; j++ {
					docs = append(docs, mkdoc(w, j))
				}
				ix.AddBulk(docs)
			}
		}(w)
	}

	// Readers: searches with sorting, pagination, and aggregations. Totals
	// are racy snapshots while writers run, so only structural invariants
	// are asserted here.
	for r := 0; r < 2; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for !done.Load() {
				resp := ix.Search(SearchRequest{
					Query: Term("syscall", "write"),
					Sort:  []SortField{{Field: "time_enter_ns", Desc: true}},
					Size:  10,
					Aggs: map[string]Agg{
						"by_writer": {Terms: &TermsAgg{Field: "writer"}},
						"lat":       {Stats: &StatsAgg{Field: "duration_ns"}},
					},
				})
				if len(resp.Hits) > 10 {
					panic("size cap violated")
				}
				sum := 0
				for _, b := range resp.Aggs["by_writer"].Buckets {
					sum += b.Count
				}
				if sum != resp.Total {
					panic(fmt.Sprintf("terms agg counted %d docs, total %d", sum, resp.Total))
				}
				if n := ix.Count(Term("syscall", "write")); n < 0 {
					panic("negative count")
				}
			}
		}()
	}

	// Correlation-style rewriter: flags matched docs in place while writes
	// and reads are in flight; the closure must be safe for concurrent
	// invocation across shards.
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		for !done.Load() {
			var flagged atomic.Int64
			ix.UpdateByQuery(Term("syscall", "fsync"), func(d Document) bool {
				if d["flag"] == "y" {
					return false
				}
				d["flag"] = "y"
				flagged.Add(1)
				return true
			})
		}
	}()

	writeWG.Wait()
	done.Store(true)
	readWG.Wait()

	total := writers * docsPerWriter
	if got := ix.Len(); got != total {
		t.Fatalf("Len = %d, want %d", got, total)
	}
	resp := ix.Search(SearchRequest{Query: MatchAll(), Size: -1})
	if resp.Total != total || len(resp.Hits) != total {
		t.Fatalf("match_all total=%d hits=%d, want %d", resp.Total, len(resp.Hits), total)
	}

	// Ids returned by Add are unique and within the dense global range.
	idMu.Lock()
	defer idMu.Unlock()
	unique := make(map[int]struct{}, len(seenIDs))
	for _, id := range seenIDs {
		if id < 0 || id >= total {
			t.Fatalf("id %d out of range [0,%d)", id, total)
		}
		if _, dup := unique[id]; dup {
			t.Fatalf("duplicate doc id %d", id)
		}
		unique[id] = struct{}{}
	}

	// No lost docs: every writer's documents are all present.
	for w := 0; w < writers; w++ {
		if n := ix.Count(Term("writer", fmt.Sprintf("w%d", w))); n != docsPerWriter {
			t.Fatalf("writer %d count = %d, want %d", w, n, docsPerWriter)
		}
	}

	// A final quiescent update pass flags every fsync doc exactly once more
	// or not at all; afterwards flag coverage equals the fsync population.
	ix.UpdateByQuery(Term("syscall", "fsync"), func(d Document) bool {
		if d["flag"] == "y" {
			return false
		}
		d["flag"] = "y"
		return true
	})
	if nf, ns := ix.Count(Exists("flag")), ix.Count(Term("syscall", "fsync")); nf != ns {
		t.Fatalf("flagged %d docs, fsync population %d", nf, ns)
	}
}

// TestShardedMatchesLegacy cross-checks the sharded parallel execution
// against the legacy serial scan on randomized documents and a spread of
// query shapes: both strategies must produce byte-identical responses
// (totals, hit order, aggregation results).
func TestShardedMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	syscalls := []string{"read", "write", "openat", "close", "fsync", "stat"}
	procs := []string{"fluent-bit", "rocksdb", "dbbench"}

	ix := NewIndexWithShards("diff", 8)
	const n = 4000
	docs := make([]Document, 0, n)
	for i := 0; i < n; i++ {
		d := Document{
			"session":       fmt.Sprintf("s%d", rng.Intn(3)),
			"syscall":       syscalls[rng.Intn(len(syscalls))],
			"proc_name":     procs[rng.Intn(len(procs))],
			"time_enter_ns": int64(rng.Intn(5_000_000)),
		}
		if rng.Intn(10) > 0 { // ~10% of docs miss the numeric field
			d["duration_ns"] = float64(rng.Intn(100_000))
		}
		if rng.Intn(4) == 0 {
			d["file_tag"] = fmt.Sprintf("dev1:ino%d", rng.Intn(50))
		}
		docs = append(docs, d)
	}
	ix.AddBulk(docs)

	reqs := []SearchRequest{
		{Query: MatchAll(), Size: -1},
		{Query: Term("syscall", "write"), Size: -1},
		{Query: Terms("syscall", "read", "write"), Size: 25, From: 10},
		{Query: RangeBetween("duration_ns", 1000, 60000), Size: -1},
		{Query: Prefix("file_tag", "dev1:ino1"), Size: -1},
		{Query: Exists("file_tag"), Size: 50},
		{Query: Must(Term("session", "s1"), Term("syscall", "read"), RangeGTE("time_enter_ns", 1_000_000)), Size: -1},
		{Query: MustNot(Term("proc_name", "rocksdb")), Size: 40, From: 5},
		{
			Query: Term("session", "s2"),
			Sort:  []SortField{{Field: "duration_ns", Desc: true}, {Field: "time_enter_ns"}},
			Size:  17,
		},
		{
			Query: Term("session", "s0"),
			Sort:  []SortField{{Field: "duration_ns"}}, // ties resolve by insertion order
			Size:  -1,
		},
		{
			Query: MatchAll(),
			Sort:  []SortField{{Field: "time_enter_ns"}},
			From:  100,
			Size:  33,
		},
		{
			Query: Term("syscall", "read"),
			Size:  1,
			Aggs: map[string]Agg{
				"by_proc": {Terms: &TermsAgg{Field: "proc_name", Size: 2}},
				"hist": {
					DateHistogram: &DateHistogramAgg{Field: "time_enter_ns", IntervalNS: 500_000},
					Aggs:          map[string]Agg{"lat": {Stats: &StatsAgg{Field: "duration_ns"}}},
				},
				"pcts":  {Percentiles: &PercentilesAgg{Field: "duration_ns", Percents: []float64{50, 90, 99}}},
				"stats": {Stats: &StatsAgg{Field: "duration_ns"}},
			},
		},
		{
			Query: Exists("duration_ns"),
			Aggs: map[string]Agg{
				"by_sys": {
					Terms: &TermsAgg{Field: "syscall"},
					Aggs:  map[string]Agg{"p": {Percentiles: &PercentilesAgg{Field: "duration_ns"}}},
				},
			},
			Size: -1,
		},
	}

	for i, req := range reqs {
		ix.SetLegacyScan(true)
		want := ix.Search(req)
		wantCount := ix.Count(req.Query)
		ix.SetLegacyScan(false)
		got := ix.Search(req)
		gotCount := ix.Count(req.Query)

		if got.Total != want.Total {
			t.Errorf("req %d: total = %d, legacy %d", i, got.Total, want.Total)
		}
		if gotCount != wantCount {
			t.Errorf("req %d: count = %d, legacy %d", i, gotCount, wantCount)
		}
		if !reflect.DeepEqual(got.Hits, want.Hits) {
			t.Errorf("req %d: hits diverge (%d vs %d docs)", i, len(got.Hits), len(want.Hits))
		}
		if !reflect.DeepEqual(got.Aggs, want.Aggs) {
			t.Errorf("req %d: aggs diverge\n got %+v\nwant %+v", i, got.Aggs, want.Aggs)
		}
	}

	// UpdateByQuery must agree too: run the same rewrite through both paths
	// on twin indices and compare the resulting documents.
	twin := NewIndexWithShards("twin", 8)
	twin.AddBulk(docs2(docs))
	twin.SetLegacyScan(true)
	legacyN := twin.UpdateByQuery(Exists("file_tag"), func(d Document) bool {
		d["resolved"] = true
		return true
	})
	shardedN := ix.UpdateByQuery(Exists("file_tag"), func(d Document) bool {
		d["resolved"] = true
		return true
	})
	if legacyN != shardedN {
		t.Fatalf("update count: sharded %d, legacy %d", shardedN, legacyN)
	}
	twin.SetLegacyScan(false)
	a := ix.Search(SearchRequest{Query: Exists("resolved"), Size: -1})
	b := twin.Search(SearchRequest{Query: Exists("resolved"), Size: -1})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("post-update responses diverge: %d vs %d hits", len(a.Hits), len(b.Hits))
	}
}

// docs2 deep-copies a document slice so twin indices don't alias maps.
func docs2(in []Document) []Document {
	out := make([]Document, len(in))
	for i, d := range in {
		c := make(Document, len(d))
		for k, v := range d {
			c[k] = v
		}
		out[i] = c
	}
	return out
}
