// Package store implements DIO's analysis backend: a document store in the
// style of Elasticsearch (§II-C) with JSON documents, a small query DSL,
// aggregations, bulk indexing, and the file-path correlation algorithm. It
// can be used in-process or through an HTTP server/client pair that mirrors
// how the paper's tracer ships events to a remote backend.
package store

import (
	"fmt"
	"strings"
)

// Document is one indexed event (or any JSON-like object).
type Document map[string]any

// Query is a JSON-serializable query in a miniature Elasticsearch DSL.
// Exactly one field should be set; a zero Query matches everything.
type Query struct {
	Term     *TermQuery   `json:"term,omitempty"`
	Terms    *TermsQuery  `json:"terms,omitempty"`
	Range    *RangeQuery  `json:"range,omitempty"`
	Prefix   *PrefixQuery `json:"prefix,omitempty"`
	Exists   *ExistsQuery `json:"exists,omitempty"`
	Bool     *BoolQuery   `json:"bool,omitempty"`
	MatchAll bool         `json:"match_all,omitempty"`
}

// TermQuery matches documents whose field equals value exactly.
type TermQuery struct {
	Field string `json:"field"`
	Value any    `json:"value"`
}

// TermsQuery matches documents whose field equals any of the values.
type TermsQuery struct {
	Field  string `json:"field"`
	Values []any  `json:"values"`
}

// RangeQuery matches numeric fields within [GTE, LTE] (either bound may be
// nil).
type RangeQuery struct {
	Field string   `json:"field"`
	GTE   *float64 `json:"gte,omitempty"`
	LTE   *float64 `json:"lte,omitempty"`
	GT    *float64 `json:"gt,omitempty"`
	LT    *float64 `json:"lt,omitempty"`
}

// PrefixQuery matches string fields starting with Value.
type PrefixQuery struct {
	Field string `json:"field"`
	Value string `json:"value"`
}

// ExistsQuery matches documents that have a non-empty value for Field.
type ExistsQuery struct {
	Field string `json:"field"`
}

// BoolQuery combines queries with must/should/must-not semantics.
type BoolQuery struct {
	Must    []Query `json:"must,omitempty"`
	Should  []Query `json:"should,omitempty"`
	MustNot []Query `json:"must_not,omitempty"`
}

// Helper constructors keep call sites concise.

// Term builds a term query.
func Term(field string, value any) Query {
	return Query{Term: &TermQuery{Field: field, Value: value}}
}

// Terms builds a terms query.
func Terms(field string, values ...any) Query {
	return Query{Terms: &TermsQuery{Field: field, Values: values}}
}

// RangeGTE builds a range query with only a lower bound.
func RangeGTE(field string, gte float64) Query {
	return Query{Range: &RangeQuery{Field: field, GTE: &gte}}
}

// RangeBetween builds a range query with both bounds inclusive.
func RangeBetween(field string, gte, lte float64) Query {
	return Query{Range: &RangeQuery{Field: field, GTE: &gte, LTE: &lte}}
}

// Prefix builds a prefix query.
func Prefix(field, value string) Query {
	return Query{Prefix: &PrefixQuery{Field: field, Value: value}}
}

// Exists builds an exists query.
func Exists(field string) Query {
	return Query{Exists: &ExistsQuery{Field: field}}
}

// MatchAll matches every document.
func MatchAll() Query { return Query{MatchAll: true} }

// Must combines queries conjunctively.
func Must(qs ...Query) Query {
	return Query{Bool: &BoolQuery{Must: qs}}
}

// MustNot builds a negation query.
func MustNot(qs ...Query) Query {
	return Query{Bool: &BoolQuery{MustNot: qs}}
}

// matchesAll reports whether the query matches every document (zero query
// or explicit match_all), letting evaluation skip per-document checks.
func (q Query) matchesAll() bool {
	return q.Term == nil && q.Terms == nil && q.Range == nil &&
		q.Prefix == nil && q.Exists == nil && q.Bool == nil
}

// contains reports whether f satisfies every bound of r. It is the single
// range-match implementation shared by the per-document evaluator below and
// the shard's columnar range scan, so the legacy and sharded paths cannot
// drift on bound semantics (GT/LT strict, GTE/LTE inclusive).
func (r *RangeQuery) contains(f float64) bool {
	if r.GTE != nil && f < *r.GTE {
		return false
	}
	if r.LTE != nil && f > *r.LTE {
		return false
	}
	if r.GT != nil && f <= *r.GT {
		return false
	}
	if r.LT != nil && f >= *r.LT {
		return false
	}
	return true
}

// fieldSource is any row representation the query evaluator can read: a
// materialized Document, or a shard slot whose typed event resolves fields
// on demand without building a map.
type fieldSource interface {
	// field returns the document-view value of the named field (nil when
	// absent).
	field(name string) any
}

func (d Document) field(name string) any { return d[name] }

// Matches evaluates the query against doc.
func (q Query) Matches(doc Document) bool { return q.matches(doc) }

// matches evaluates the query against any row representation.
func (q Query) matches(src fieldSource) bool {
	switch {
	case q.Term != nil:
		return valueEquals(src.field(q.Term.Field), q.Term.Value)
	case q.Terms != nil:
		v := src.field(q.Terms.Field)
		for _, want := range q.Terms.Values {
			if valueEquals(v, want) {
				return true
			}
		}
		return false
	case q.Range != nil:
		f, ok := numeric(src.field(q.Range.Field))
		if !ok {
			return false
		}
		return q.Range.contains(f)
	case q.Prefix != nil:
		s, ok := src.field(q.Prefix.Field).(string)
		return ok && strings.HasPrefix(s, q.Prefix.Value)
	case q.Exists != nil:
		v := src.field(q.Exists.Field)
		if v == nil {
			return false
		}
		if s, isStr := v.(string); isStr && s == "" {
			return false
		}
		return true
	case q.Bool != nil:
		for _, sub := range q.Bool.Must {
			if !sub.matches(src) {
				return false
			}
		}
		for _, sub := range q.Bool.MustNot {
			if sub.matches(src) {
				return false
			}
		}
		if len(q.Bool.Should) > 0 {
			any := false
			for _, sub := range q.Bool.Should {
				if sub.matches(src) {
					any = true
					break
				}
			}
			if !any {
				return false
			}
		}
		return true
	default:
		return true // zero query and match_all behave alike
	}
}

// numeric coerces JSON-ish scalar values to float64.
func numeric(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int32:
		return float64(x), true
	case int64:
		return float64(x), true
	case uint64:
		return float64(x), true
	case uint32:
		return float64(x), true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

// valueEquals compares document and query values with numeric coercion, so
// that a query built in Go (int) matches a document decoded from JSON
// (float64).
func valueEquals(have, want any) bool {
	if hs, ok := have.(string); ok {
		ws, ok := want.(string)
		return ok && hs == ws
	}
	hf, hok := numeric(have)
	wf, wok := numeric(want)
	if hok && wok {
		return hf == wf
	}
	return fmt.Sprintf("%v", have) == fmt.Sprintf("%v", want)
}

// keyString renders any scalar as a stable bucket key.
func keyString(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case nil:
		return ""
	default:
		if f, ok := numeric(v); ok {
			if f == float64(int64(f)) {
				return fmt.Sprintf("%d", int64(f))
			}
			return fmt.Sprintf("%g", f)
		}
		return fmt.Sprintf("%v", x)
	}
}
