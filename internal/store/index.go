package store

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/dsrhaslab/dio-go/internal/durable"
	"github.com/dsrhaslab/dio-go/internal/event"
)

// indexedFields are the keyword fields for which the index maintains posting
// lists, accelerating the term queries issued by the paper's dashboards
// (session, syscall, process/thread names).
var indexedFields = []string{"session", "syscall", "proc_name", "thread_name", "class"}

// Index stores the documents of one index, striped across shards so that
// writes contend on 1/N of the index and reads fan out across cores.
//
// Documents are assigned to shards round-robin in insertion order: the
// document with global id g lives in shard g%N at local position g/N. A
// single-writer workload therefore observes ids 0,1,2,… exactly as the
// unsharded implementation did, and unsorted searches return documents in
// insertion order.
type Index struct {
	name   string
	shards []*shard
	rr     atomic.Uint64 // round-robin write cursor
	legacy atomic.Bool   // ablation: serial single-stripe scan semantics
	dur    *indexDurable // nil on in-memory stores

	// epoch versions the index contents for the query cache: every mutation
	// bumps it at both its start and its end, so any cached response that
	// could observe the mutation's partial state carries a dead epoch.
	epoch atomic.Uint64
	// generic counts generic (map-backed) rows ever placed. While zero, every
	// row obeys the typed schema's integral fields, which licenses the cache
	// fingerprint's integer range-bound folding.
	generic atomic.Int64

	// Tiered layout state. base is the first global id held in shard memory:
	// rows below it are cold (readable only through committed segment files,
	// populated when retention evicts flushed rows), rows at or above it live
	// in shard g-base%N at local (g-base)/N. base only moves while the
	// snapshot gate and every shard write lock are held, so any reader that
	// holds one shard read lock sees a frozen base. coldRows counts the rows
	// in cold segments (recomputed at every segment-list publication);
	// retFloor is one past the highest row id retention ever dropped, the
	// expiry bound for unsorted paging cursors. All zero on in-memory and
	// non-evicting indices, making the hot path's arithmetic unchanged.
	base     atomic.Int64
	coldRows atomic.Int64
	retFloor atomic.Int64
	pruneOff atomic.Bool // ablation: disable time-range segment pruning

	rollupBase int64         // rollup histogram base interval ns (0 = disabled)
	cache      *queryCache   // nil = caching disabled
	rtm        readTelemetry // rollup counters (zero value = no-op)

	// Follower-side replication state: replMu serializes ReplApply so frames
	// land in primary order; replSeq is the primary sequence applied so far
	// (== dur.replOff + dur.recSeq on a durable follower).
	replMu  sync.Mutex
	replSeq atomic.Int64
}

// defaultShardCount picks the shard count for new indices: the power of two
// covering GOMAXPROCS, floored at 4 (so merge paths stay exercised on small
// machines) and capped at 32.
func defaultShardCount() int {
	n := 4
	for n < runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	if n > 32 {
		n = 32
	}
	return n
}

// NewIndex creates an empty index with the default shard count.
func NewIndex(name string) *Index { return NewIndexWithShards(name, 0) }

// NewIndexWithShards creates an empty index with n shards (n <= 0 selects
// the default policy) and the default rollup interval.
func NewIndexWithShards(name string, n int) *Index {
	return newIndexSized(name, n, defaultRollupIntervalNS)
}

// newIndexSized is the full constructor: shard count plus the continuous
// rollup base interval (0 disables rollup maintenance).
func newIndexSized(name string, n int, rollupBase int64) *Index {
	if n <= 0 {
		n = defaultShardCount()
	}
	ix := &Index{name: name, shards: make([]*shard, n), rollupBase: rollupBase}
	for i := range ix.shards {
		ix.shards[i] = newShard(rollupBase)
	}
	return ix
}

// Name returns the index name.
func (ix *Index) Name() string { return ix.name }

// NumShards returns the number of lock stripes.
func (ix *Index) NumShards() int { return len(ix.shards) }

// SetLegacyScan toggles the pre-sharding execution strategy — serial
// evaluation, no columnar caches, full-sort-then-copy hits — kept as an
// ablation baseline for the scalability benchmarks (like the ring buffer's
// blocking mode).
func (ix *Index) SetLegacyScan(v bool) { ix.legacy.Store(v) }

// gid composes a global doc id from a shard index and local position (hot
// rows only: shard memory starts at the index base).
func (ix *Index) gid(shardIdx int, local int32) int {
	return int(ix.base.Load()) + int(local)*len(ix.shards) + shardIdx
}

// SetSegmentPruning toggles time-range segment pruning on the cold read
// path (on by default); the off position is the ablation baseline for
// BenchmarkSegmentPrunedSearch.
func (ix *Index) SetSegmentPruning(v bool) { ix.pruneOff.Store(!v) }

// Add indexes one document and returns its global id. On a durable index
// the document is journaled (as a one-document batch) before it is applied.
func (ix *Index) Add(doc Document) (int, error) {
	if ix.dur == nil {
		start := int(ix.rr.Add(1) - 1)
		ix.addBulkAt(start, []Document{doc})
		return start, nil
	}
	ix.dur.gate.RLock()
	defer ix.dur.gate.RUnlock()
	payload, err := encodeGob([]Document{doc})
	if err != nil {
		return 0, err
	}
	gid := -1
	err = ix.journalApply(durable.RecordDocs, payload, true, 1, func(start int) {
		gid = start
		ix.addBulkAt(start, []Document{doc})
	})
	return gid, err
}

// AddBulk indexes a batch of documents, locking each shard once. On a
// durable index the batch is journaled before it is applied; a journaling
// error leaves the index unchanged.
func (ix *Index) AddBulk(docs []Document) error {
	if len(docs) == 0 {
		return nil
	}
	if ix.dur == nil {
		start := int(ix.rr.Add(uint64(len(docs))) - uint64(len(docs)))
		ix.addBulkAt(start, docs)
		return nil
	}
	ix.dur.gate.RLock()
	defer ix.dur.gate.RUnlock()
	payload, err := encodeGob(docs)
	if err != nil {
		return err
	}
	return ix.journalApply(durable.RecordDocs, payload, true, len(docs), func(start int) {
		ix.addBulkAt(start, docs)
	})
}

// AddEvents is the typed ingest fast path: each event is copied straight
// into its shard's typed storage and keyword postings, preserving the same
// round-robin placement as AddBulk but never materializing a Document. On a
// durable index the batch journals first, reusing the wire codec's binary
// frame from a pooled scratch buffer. The events slice is not retained;
// callers recycle their batch buffers.
func (ix *Index) AddEvents(events []event.Event) error {
	if len(events) == 0 {
		return nil
	}
	// Canonicalize before journaling or placement: Offset is meaningless
	// without HasOffset, and both the wire codec and the segment reader clear
	// it on decode. Clearing here keeps the live in-memory state identical to
	// its own durability round-trip.
	for i := range events {
		if !events[i].HasOffset {
			events[i].Offset = 0
		}
	}
	if ix.dur == nil {
		start := int(ix.rr.Add(uint64(len(events))) - uint64(len(events)))
		ix.addEventsAt(start, events)
		return nil
	}
	ix.dur.gate.RLock()
	defer ix.dur.gate.RUnlock()
	bp := encodePool.Get().(*[]byte)
	payload := event.EncodeBatch((*bp)[:0], events)
	// When replication is armed, hand the encode buffer to the tail instead
	// of recycling it — cheaper than cloning the payload under appendMu. The
	// pooled box is returned with a replacement buffer pre-sized to the
	// surrendered one, so the next encode grows from full capacity.
	owned := ix.dur.tail.wants()
	err := ix.journalApply(durable.RecordEvents, payload, owned, len(events), func(start int) {
		ix.addEventsAt(start, events)
	})
	if owned {
		*bp = make([]byte, 0, cap(payload))
	} else {
		*bp = payload[:0]
	}
	encodePool.Put(bp)
	return err
}

// addEventsFrame places an already-decoded batch whose wire frame is in
// hand: the frame bytes are journaled verbatim (they are exactly the WAL's
// RecordEvents payload format), skipping the re-encode AddEvents would pay.
// Decoded events are already canonical — the codec clears Offset when the
// HasOffset aux bit is unset — so no normalization pass is needed either.
// owned passes through to journalApply: true means the frame's buffer is
// surrendered to the replication tail and must not be reused by the caller.
func (ix *Index) addEventsFrame(frame []byte, owned bool, events []event.Event) error {
	if len(events) == 0 {
		return nil
	}
	if ix.dur == nil {
		start := int(ix.rr.Add(uint64(len(events))) - uint64(len(events)))
		ix.addEventsAt(start, events)
		return nil
	}
	ix.dur.gate.RLock()
	defer ix.dur.gate.RUnlock()
	return ix.journalApply(durable.RecordEvents, frame, owned, len(events), func(start int) {
		ix.addEventsAt(start, events)
	})
}

// addBulkAt places docs at global ids start..start+len-1. Placement is pure
// arithmetic on the global id, so WAL replay (which reserves the same id
// ranges in record order) reproduces it exactly. Shard memory starts at the
// index base, so placement works in memory ids (gid - base); base is stable
// here — every durable caller holds the snapshot gate shared, and eviction
// only moves base under the exclusive gate.
func (ix *Index) addBulkAt(start int, docs []Document) {
	ix.epoch.Add(1)
	defer ix.epoch.Add(1)
	ix.generic.Add(int64(len(docs)))
	S := len(ix.shards)
	ms := start - int(ix.base.Load())
	for s := 0; s < S; s++ {
		first := ((s-ms)%S + S) % S
		if first >= len(docs) {
			continue
		}
		sh := ix.shards[s]
		sh.mu.Lock()
		for i := first; i < len(docs); i += S {
			sh.addLocked(docs[i])
		}
		sh.mu.Unlock()
	}
}

// addEventsAt places events at global ids start..start+len-1, walking each
// shard's arithmetic slice of the batch directly instead of building
// per-shard groups: one lock per shard, zero allocations.
func (ix *Index) addEventsAt(start int, events []event.Event) {
	ix.epoch.Add(1)
	defer ix.epoch.Add(1)
	S := len(ix.shards)
	ms := start - int(ix.base.Load())
	for s := 0; s < S; s++ {
		first := ((s-ms)%S + S) % S
		if first >= len(events) {
			continue
		}
		sh := ix.shards[s]
		sh.mu.Lock()
		for i := first; i < len(events); i += S {
			sh.addEventLocked(&events[i])
		}
		sh.mu.Unlock()
	}
}

// Len returns the number of documents: cold rows (segment-resident, below
// the base) plus everything in shard memory. Retention drops shrink it.
func (ix *Index) Len() int {
	n := int(ix.coldRows.Load())
	for _, sh := range ix.shards {
		n += sh.len()
	}
	return n
}

// ShardDocCounts returns the per-shard document counts, for the telemetry
// shard-imbalance gauge and the _stats API.
func (ix *Index) ShardDocCounts() []int {
	counts := make([]int, len(ix.shards))
	for i, sh := range ix.shards {
		counts[i] = sh.len()
	}
	return counts
}

// SearchRequest describes one search: a query, sorting, pagination, and
// aggregations over the matched set.
type SearchRequest struct {
	Query Query          `json:"query"`
	Sort  []SortField    `json:"sort,omitempty"`
	From  int            `json:"from,omitempty"`
	Size  int            `json:"size,omitempty"` // <=0 returns all hits
	Aggs  map[string]Agg `json:"aggs,omitempty"`
	// SearchAfter resumes a paged walk strictly after the row a previous
	// response's NextAfter named: one scalar per sort field, then the global
	// id tie-break. Requires From == 0. See cursor.go for the wire format.
	SearchAfter []any `json:"search_after,omitempty"`
}

// SortField orders results by a document field.
type SortField struct {
	Field string `json:"field"`
	Desc  bool   `json:"desc,omitempty"`
}

// SearchResponse is the result of a search.
type SearchResponse struct {
	Total int                  `json:"total"`
	Hits  []Document           `json:"hits"`
	Aggs  map[string]AggResult `json:"aggs,omitempty"`
	// NextAfter is the continuation token for the next page: present exactly
	// when the request was bounded (Size > 0) and this response filled it.
	NextAfter []any `json:"next_after,omitempty"`
}

// shardResult is one shard's contribution to a search: its match count,
// its (sorted, possibly truncated) hit candidates, and its aggregation
// partials, produced under the shard's read lock and merged lock-free.
type shardResult struct {
	total    int
	hits     []hitRef
	partials map[string]*partialAgg
}

// hitRef locates a matched row for merge ordering without materializing it:
// the shard, the local id (resolved lazily through the shard's accessors),
// and the global id used as the stable tie-break.
type hitRef struct {
	sh  *shard
	id  int32
	gid int
}

// EventsResult is the typed counterpart of SearchResponse: the same query,
// sorting, pagination, and aggregations, with hits returned as events
// instead of documents. Typed rows are copied out directly — no Document is
// built anywhere on this path.
type EventsResult struct {
	Total int                  `json:"total"`
	Hits  []event.Event        `json:"hits"`
	Aggs  map[string]AggResult `json:"aggs,omitempty"`
	// NextAfter mirrors SearchResponse.NextAfter (cursor.go).
	NextAfter []any `json:"next_after,omitempty"`
}

// Search runs req against the index: every shard matches, pre-sorts, and
// pre-aggregates its stripe (in parallel when cores are available), then the
// per-shard results are merged — top-k merge for sorted hits, map merges for
// bucketing aggregations, a streaming merge for percentiles. Only the
// winning rows of the requested window are materialized as Documents.
func (ix *Index) Search(req SearchRequest) SearchResponse {
	resp, _ := ix.searchCtx(context.Background(), req)
	return resp
}

// searchCtx is Search with cancellation: ctx is checked between shards
// during fan-out, so a cancelled client stops consuming cores mid-query.
func (ix *Index) searchCtx(ctx context.Context, req SearchRequest) (SearchResponse, error) {
	if ix.legacy.Load() {
		return ix.legacySearch(req)
	}
	var resp SearchResponse
	err := ix.searchRefs(ctx, req, func(refs []hitRef, total int, aggs map[string]AggResult, next []any) {
		hits := make([]Document, len(refs))
		for i, ref := range refs {
			hits[i] = ref.sh.docView(ref.id)
		}
		resp = SearchResponse{Total: total, Hits: hits, Aggs: aggs, NextAfter: next}
	})
	return resp, err
}

// SearchEvents runs req and returns typed hits. Typed rows never round-trip
// through a Document; generic rows convert best-effort through the schema.
func (ix *Index) SearchEvents(req SearchRequest) EventsResult {
	res, _ := ix.searchEventsCtx(context.Background(), req)
	return res
}

// searchEventsCtx is SearchEvents with cancellation.
func (ix *Index) searchEventsCtx(ctx context.Context, req SearchRequest) (EventsResult, error) {
	if ix.legacy.Load() {
		resp, err := ix.legacySearch(req)
		if err != nil {
			return EventsResult{}, err
		}
		hits := make([]event.Event, len(resp.Hits))
		for i, d := range resp.Hits {
			hits[i] = DocToEvent(d)
		}
		return EventsResult{Total: resp.Total, Hits: hits, Aggs: resp.Aggs, NextAfter: resp.NextAfter}, nil
	}
	var res EventsResult
	err := ix.searchRefs(ctx, req, func(refs []hitRef, total int, aggs map[string]AggResult, next []any) {
		hits := make([]event.Event, len(refs))
		for i, ref := range refs {
			hits[i] = ref.sh.eventView(ref.id)
		}
		res = EventsResult{Total: total, Hits: hits, Aggs: aggs, NextAfter: next}
	})
	return res, err
}

// searchRefs runs the sharded search pipeline and hands the merged,
// windowed hit refs to finish while every shard's read lock is still held —
// the materialization step reads row storage, so it must happen inside the
// snapshot. A cancelled ctx aborts between shards; finish is then never
// called.
func (ix *Index) searchRefs(ctx context.Context, req SearchRequest, finish func(refs []hitRef, total int, aggs map[string]AggResult, next []any)) error {
	return ix.searchShards(ctx, req, nil, func(refs []hitRef, total int, parts map[string]*partialAgg) {
		var aggs map[string]AggResult
		if len(req.Aggs) > 0 {
			aggs = make(map[string]AggResult, len(req.Aggs))
			for name, a := range req.Aggs {
				aggs[name] = finalizePartial(a, parts[name])
			}
		}
		var next []any
		if req.Size > 0 && len(refs) == req.Size {
			next = nextAfterRef(refs[len(refs)-1], req.Sort)
		}
		finish(refs, total, aggs, next)
	})
}

// partitionView places this index inside a partitioned cluster for one
// scatter: the index holds partition p of n, so its local row l carries
// cluster-global id l*n+p and incoming cursor positions are cluster-global.
// A nil view is the single-node case (local ids are global).
type partitionView struct {
	partition  int
	partitions int
}

// searchShards is the shard fan-out half of the search pipeline: it matches,
// pre-sorts, and pre-aggregates every stripe (cold segments included), k-way
// merges the hit candidates, and hands finish the windowed refs plus the
// per-aggregation COMBINED partials — not yet finalized, so a cluster
// coordinator can combine them once more across partitions before
// finalizing. finish runs while every shard read lock is held. A non-nil
// view translates the request's cursor from cluster-global coordinates into
// node-local ones after validation, so a scattered request rejects exactly
// the cursors a single node would.
func (ix *Index) searchShards(ctx context.Context, req SearchRequest, view *partitionView, finish func(refs []hitRef, total int, parts map[string]*partialAgg)) error {
	cur, err := parseSearchAfter(req)
	if err != nil {
		return err
	}
	P, pt := 1, 0
	if view != nil {
		P, pt = view.partitions, view.partition
	}
	// An unsorted cursor names a resume row by global id; if retention may
	// have dropped any row past it, resuming would silently skip data — fail
	// loudly instead. Under a partition view the retention floor is local, so
	// the highest dropped cluster-global row is (floor-1)*P + p; with P=1,
	// p=0 the condition reduces to the single-node floor > cur.gid+1. Sorted
	// cursors resume by sort key, not position, so a concurrent drop just
	// means fewer rows — the usual deletion-during-pagination semantics — and
	// they never expire.
	if cur != nil && len(req.Sort) == 0 {
		if fl := ix.retFloor.Load(); (fl-1)*int64(P)+int64(pt) > int64(cur.gid) {
			return ErrCursorExpired
		}
	}
	if cur != nil && view != nil {
		// Validation above ran on the cluster-global cursor (the same bounds a
		// 1-node store enforces); only now does the gid translate into this
		// partition's local coordinates. The translated bound may be negative
		// — "before every local row" — which the resume arithmetic handles but
		// the wire format deliberately rejects.
		cur = &searchCursor{vals: cur.vals, gid: partitionGidAfter(cur.gid, pt, P)}
	}
	S := len(ix.shards)
	plan := ix.planRollup(req)
	if plan != nil {
		ix.ensureRollups()
	}
	cols := neededColumns(req, plan)
	for _, sh := range ix.shards {
		sh.ensureColumns(cols)
	}
	// Hold every shard's read lock for the whole search. The merge stage
	// reads rows (sort comparisons, sub-aggregation finalize, hit
	// materialization) after the per-shard phase, so releasing locks between
	// the two would race a concurrent UpdateByQuery; a full read snapshot
	// reproduces the unsharded implementation's single-RLock semantics while
	// the per-shard work still fans out in parallel.
	for _, sh := range ix.shards {
		sh.mu.RLock()
	}
	defer func() {
		for _, sh := range ix.shards {
			sh.mu.RUnlock()
		}
	}()
	// need is how many leading hit candidates each shard must contribute for
	// a correct global window; 0 means all.
	need := 0
	if req.Size > 0 {
		need = req.From + req.Size
	}
	exec := &searchExec{req: req, need: need, plan: plan, cur: cur, rtm: &ix.rtm}
	// base is frozen for the duration: it only moves under every shard write
	// lock, all of which we now hold shared.
	base := int(ix.base.Load())
	results := make([]shardResult, S)
	if err := forEachShardCtx(ctx, S, func(s int) {
		sh := ix.shards[s]
		gidOf := func(id int32) int { return base + int(id)*S + s }
		firstAfter := func(gid int) int32 { return firstLocalAfter(gid-base, s, S) }
		results[s] = sh.searchLocked(exec, gidOf, firstAfter)
	}); err != nil {
		return err
	}
	if ix.coldRows.Load() > 0 {
		coldResults, err := ix.coldSearch(ctx, exec)
		if err != nil {
			return err
		}
		// The k-way merge below orders by sort key with a gid tie-break, and
		// cold gids all precede hot ones, so appending the per-segment results
		// to the shard results composes correctly.
		results = append(results, coldResults...)
	}

	total := 0
	for i := range results {
		total += results[i].total
	}
	var combined map[string]*partialAgg
	if len(req.Aggs) > 0 {
		combined = make(map[string]*partialAgg, len(req.Aggs))
		for name, a := range req.Aggs {
			parts := make([]*partialAgg, 0, S)
			for i := range results {
				if p := results[i].partials[name]; p != nil {
					parts = append(parts, p)
				}
			}
			combined[name] = combinePartials(a, parts)
		}
	}
	finish(mergeHits(results, req, need), total, combined)
	return nil
}

// searchExec bundles one search's per-request execution state for the shard
// fan-out: the request, the global candidate budget, the rollup plan, and
// the parsed cursor.
type searchExec struct {
	req  SearchRequest
	need int
	plan *rollupPlan
	cur  *searchCursor
	rtm  *readTelemetry
}

// searchLocked produces one row store's result; the caller holds sh.mu.RLock
// (or owns the shard outright, for transient cold-segment shards). Global id
// arithmetic is abstracted behind two closures so the same pipeline serves
// hot shards (dense round-robin ids offset by the index base) and cold
// segments (explicit, possibly sparse, gid lists): gidOf maps a local row id
// to its global id, firstAfter returns the first local id whose global id is
// strictly greater than gid (len(rows) when none), both monotone.
func (sh *shard) searchLocked(exec *searchExec, gidOf func(id int32) int, firstAfter func(gid int) int32) shardResult {
	req := exec.req
	need := exec.need
	matchAll := req.Query.matchesAll()
	// ids materializes lazily: a rollup-served match-all request never needs
	// the O(n) id enumeration at all.
	var ids []int32
	idsReady := false
	getIDs := func() []int32 {
		if !idsReady {
			ids = sh.matchIDs(req.Query, true)
			idsReady = true
		}
		return ids
	}
	var res shardResult
	if matchAll {
		res.total = len(sh.docs)
	} else {
		res.total = len(getIDs())
	}
	if len(req.Aggs) > 0 {
		res.partials = make(map[string]*partialAgg, len(req.Aggs))
		for name, a := range req.Aggs {
			if exec.plan != nil && exec.plan.served[name] {
				if p := sh.rollupServe(exec.plan, a); p != nil {
					res.partials[name] = p
					exec.rtm.rollupHits.Inc()
					continue
				}
			}
			// Everything else — unplannable requests, unservable agg shapes,
			// per-shard overflow or stray-session fallbacks — is a scan, and
			// counts as a miss so the hit ratio on /metrics means something.
			exec.rtm.rollupMisses.Inc()
			res.partials[name] = sh.partial(a, getIDs())
		}
	}
	// Aggregations and Total cover the full matched set; the cursor only
	// restricts which rows become hit candidates.
	var hitIDs []int32
	switch {
	case len(req.Sort) > 0:
		cand := getIDs()
		if exec.cur != nil {
			after := make([]int32, 0, len(cand))
			for _, id := range cand {
				if exec.cur.afterID(sh, id, gidOf(id), req.Sort) {
					after = append(after, id)
				}
			}
			cand = after
		}
		// Sort ids, not documents, comparing through the sort columns, and
		// only materialize the winners. The local-id tie-break makes the
		// order total, which is exactly the stable insertion order (local id
		// order == per-shard global id order), so heap selection below
		// returns the same winners a stable full sort would.
		sortCols := make([]*column, len(req.Sort))
		for i, s := range req.Sort {
			sortCols[i] = sh.cols[s.Field]
		}
		less := func(a, b int32) bool {
			if r := sh.cmpIDs(a, b, req.Sort, sortCols); r != 0 {
				return r < 0
			}
			return a < b
		}
		if need > 0 && need < len(cand) {
			hitIDs = topK(cand, need, less)
		} else {
			cp := make([]int32, len(cand))
			copy(cp, cand)
			sort.Slice(cp, func(i, j int) bool { return less(cp[i], cp[j]) })
			hitIDs = cp
		}
	case matchAll:
		// Unsorted match-all pages arithmetically: candidates are the local
		// id range starting just past the cursor, clipped to the budget.
		first := int32(0)
		if exec.cur != nil {
			first = firstAfter(exec.cur.gid)
		}
		n := len(sh.docs) - int(first)
		if n < 0 {
			n = 0
		}
		if need > 0 && n > need {
			n = need
		}
		hitIDs = make([]int32, n)
		for i := range hitIDs {
			hitIDs[i] = first + int32(i)
		}
	default:
		cand := getIDs()
		if exec.cur != nil {
			// Unsorted order is gid order, so the resume point is a lower
			// bound on the ascending local ids.
			first := firstAfter(exec.cur.gid)
			lo := sort.Search(len(cand), func(i int) bool { return cand[i] >= first })
			cand = cand[lo:]
		}
		hitIDs = cand
	}
	if need > 0 && len(hitIDs) > need {
		hitIDs = hitIDs[:need]
	}
	res.hits = make([]hitRef, len(hitIDs))
	for i, id := range hitIDs {
		res.hits[i] = hitRef{sh: sh, id: id, gid: gidOf(id)}
	}
	return res
}

// topK selects the k smallest ids under less (a total order) in ascending
// order without sorting the full candidate set: a size-k max-heap holds the
// current winners with the worst at the root, so selection is O(n log k)
// instead of O(n log n) — the difference between paging a dashboard and
// re-sorting a whole session per query.
func topK(ids []int32, k int, less func(a, b int32) bool) []int32 {
	h := make([]int32, 0, k)
	down := func(i int) {
		for {
			big := i
			if l := 2*i + 1; l < len(h) && less(h[big], h[l]) {
				big = l
			}
			if r := 2*i + 2; r < len(h) && less(h[big], h[r]) {
				big = r
			}
			if big == i {
				return
			}
			h[i], h[big] = h[big], h[i]
			i = big
		}
	}
	for _, id := range ids {
		if len(h) < k {
			h = append(h, id)
			for i := len(h) - 1; i > 0; {
				p := (i - 1) / 2
				if !less(h[p], h[i]) {
					break
				}
				h[i], h[p] = h[p], h[i]
				i = p
			}
		} else if less(id, h[0]) {
			h[0] = id
			down(0)
		}
	}
	sort.Slice(h, func(i, j int) bool { return less(h[i], h[j]) })
	return h
}

// hitLess orders merged hits by the request's sort fields, breaking ties by
// global id so that unsorted (and tied) results keep insertion order, as the
// unsharded implementation's stable sort did. Field values are resolved
// through the owning shard's accessors, so typed rows compare without ever
// materializing a Document.
func hitLess(a, b hitRef, sorts []SortField) bool {
	for _, s := range sorts {
		if r := cmpField(a.sh.val(a.id, s.Field), b.sh.val(b.id, s.Field), s.Desc); r != 0 {
			return r < 0
		}
	}
	return a.gid < b.gid
}

// mergeHits k-way merges the per-shard candidate lists and applies the
// From/Size window, returning refs — materialization is the caller's choice
// (documents for Search, events for SearchEvents). The merge itself is the
// shared kwayMerge from the merge layer; the cluster coordinator runs the
// identical merge over per-node candidates with the wire-rendered sort keys.
func mergeHits(results []shardResult, req SearchRequest, need int) []hitRef {
	lists := make([][]hitRef, len(results))
	for i := range results {
		lists[i] = results[i].hits
	}
	out := kwayMerge(lists, func(a, b hitRef) bool { return hitLess(a, b, req.Sort) }, need)
	if req.From > 0 {
		if req.From >= len(out) {
			return nil
		}
		out = out[req.From:]
	}
	if req.Size > 0 && len(out) > req.Size {
		out = out[:req.Size]
	}
	return out
}

// neededColumns lists the numeric fields a request will read through the
// columnar caches: range-query fields and top-level numeric aggregation
// fields. Aggregations the rollup plan will serve are excluded — their
// columns would be built (and, after every ingest batch, re-extended) for
// nothing; the rare per-shard fallback still works through colVal's
// row-storage path.
func neededColumns(req SearchRequest, plan *rollupPlan) []string {
	var out []string
	seen := make(map[string]struct{})
	add := func(f string) {
		if f == "" {
			return
		}
		if _, ok := seen[f]; ok {
			return
		}
		seen[f] = struct{}{}
		out = append(out, f)
	}
	var walk func(q Query)
	walk = func(q Query) {
		if q.Range != nil {
			add(q.Range.Field)
		}
		if q.Bool != nil {
			for _, sub := range q.Bool.Must {
				walk(sub)
			}
			for _, sub := range q.Bool.Should {
				walk(sub)
			}
			for _, sub := range q.Bool.MustNot {
				walk(sub)
			}
		}
	}
	walk(req.Query)
	for _, s := range req.Sort {
		add(s.Field)
	}
	for name, a := range req.Aggs {
		if plan != nil && plan.served[name] {
			continue
		}
		if a.DateHistogram != nil {
			add(a.DateHistogram.Field)
		}
		if a.Percentiles != nil {
			add(a.Percentiles.Field)
		}
		if a.Stats != nil {
			add(a.Stats.Field)
		}
	}
	return out
}

// Count returns the number of documents matching q.
func (ix *Index) Count(q Query) int {
	n, _ := ix.countCtx(context.Background(), q)
	return n
}

// countCtx is Count with cancellation between shards.
func (ix *Index) countCtx(ctx context.Context, q Query) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	cold := ix.coldRows.Load() > 0
	if q.matchesAll() && !cold {
		return ix.Len(), nil
	}
	if ix.legacy.Load() {
		// The legacy ablation predates the tiered layout and stays hot-only.
		n := 0
		for _, sh := range ix.shards {
			sh.mu.RLock()
			n += len(sh.matchIDs(q, false))
			sh.mu.RUnlock()
		}
		return n, nil
	}
	cols := neededColumns(SearchRequest{Query: q}, nil)
	for _, sh := range ix.shards {
		sh.ensureColumns(cols)
	}
	if !cold {
		counts := make([]int, len(ix.shards))
		if err := forEachShardCtx(ctx, len(ix.shards), func(s int) {
			sh := ix.shards[s]
			sh.mu.RLock()
			counts[s] = len(sh.matchIDs(q, true))
			sh.mu.RUnlock()
		}); err != nil {
			return 0, err
		}
		n := 0
		for _, c := range counts {
			n += c
		}
		return n, nil
	}
	// With cold rows in play, hold every shard read lock across the whole
	// count: a concurrent flush-evict moves rows from shard memory into the
	// cold tier, and counting the two sides at different moments would count
	// those rows twice or zero times. The locks freeze (base, segs, shard
	// contents) into one consistent cut, like searchRefs does.
	for _, sh := range ix.shards {
		sh.mu.RLock()
	}
	defer func() {
		for _, sh := range ix.shards {
			sh.mu.RUnlock()
		}
	}()
	n := 0
	if q.matchesAll() {
		n = int(ix.coldRows.Load())
		for _, sh := range ix.shards {
			n += sh.len()
		}
		return n, nil
	}
	counts := make([]int, len(ix.shards))
	if err := forEachShardCtx(ctx, len(ix.shards), func(s int) {
		counts[s] = len(ix.shards[s].matchIDs(q, true))
	}); err != nil {
		return 0, err
	}
	for _, c := range counts {
		n += c
	}
	cn, err := ix.coldCount(ctx, q)
	if err != nil {
		return 0, err
	}
	return n + cn, nil
}

// UpdateByQuery applies fn to every matching document, in place, and
// returns the number of updated documents. fn must return true if it
// changed the document.
//
// Typed rows are materialized as a Document view for fn and, when fn reports
// a change, written back through the event schema: schema fields persist,
// non-schema keys are dropped (the typed row is the storage of record).
//
// Shards update in parallel, so fn may be invoked from multiple goroutines
// concurrently (never for the same document); closures that accumulate
// state must synchronize. Cached numeric columns of updated shards are
// invalidated.
//
// On a durable index the effects — the final state of every changed row —
// are journaled as a rewrite record; a journaling error is reported through
// the ctx-aware form (this legacy wrapper drops it, like the pre-durability
// in-memory semantics it preserves).
func (ix *Index) UpdateByQuery(q Query, fn func(Document) bool) int {
	n, _ := ix.updateByQueryCtx(context.Background(), q, fn)
	return n
}

// updateByQueryCtx is UpdateByQuery with cancellation and journaling
// errors. A cancelled ctx stops the fan-out between shards; effects already
// applied are still journaled, so the durable log never lags memory.
func (ix *Index) updateByQueryCtx(ctx context.Context, q Query, fn func(Document) bool) (int, error) {
	ix.epoch.Add(1)
	defer ix.epoch.Add(1)
	d := ix.dur
	var rewrites [][]walRewrite
	if d != nil {
		// One update-by-query at a time per durable index: concurrent passes
		// could journal their rewrite records in the opposite order of their
		// in-memory application, and replay would then resurrect the loser.
		d.ubqMu.Lock()
		defer d.ubqMu.Unlock()
		d.gate.RLock()
		defer d.gate.RUnlock()
		rewrites = make([][]walRewrite, len(ix.shards))
	}
	S := len(ix.shards)
	// The gate (shared) freezes base; rewrite records name rows by global id.
	// Note the scan walks shard memory only: on an evicting (retention) index
	// cold rows are never visited, a documented trade of update reach for
	// bounded memory.
	base := int(ix.base.Load())
	counts := make([]int, S)
	run := func(s int) {
		sh := ix.shards[s]
		sh.mu.Lock()
		updated := 0
		r := row{sh: sh}
		for i := range sh.docs {
			if d2 := sh.docs[i]; d2 != nil {
				if !q.matches(d2) {
					continue
				}
				before := docTerms(d2)
				if fn(d2) {
					sh.repostLocked(int32(i), before, docTerms(d2))
					updated++
					if d != nil {
						rewrites[s] = append(rewrites[s], walRewrite{Gid: base + i*S + s, Doc: d2})
					}
				}
				continue
			}
			r.id = int32(i)
			if !q.matches(&r) {
				continue
			}
			before := eventTerms(&sh.events[i])
			d2 := EventToDoc(&sh.events[i])
			if fn(d2) {
				sh.events[i] = DocToEvent(d2)
				sh.repostLocked(int32(i), before, eventTerms(&sh.events[i]))
				updated++
				if d != nil {
					rewrites[s] = append(rewrites[s], walRewrite{Gid: base + i*S + s, Doc: d2})
				}
			}
		}
		if updated > 0 {
			sh.invalidateColumnsLocked()
			sh.invalidateRollupLocked()
		}
		counts[s] = updated
		sh.mu.Unlock()
	}
	var fanErr error
	if ix.legacy.Load() {
		for s := 0; s < S; s++ {
			run(s)
		}
	} else {
		fanErr = forEachShardCtx(ctx, S, run)
	}
	n := 0
	for _, c := range counts {
		n += c
	}
	if d != nil && n > 0 {
		flat := make([]walRewrite, 0, n)
		for _, rs := range rewrites {
			flat = append(flat, rs...)
		}
		payload, err := encodeGob(flat)
		if err != nil {
			return n, err
		}
		if err := ix.journalApply(durable.RecordRewrite, payload, true, 0, nil); err != nil {
			return n, err
		}
		// Rewrites of rows already folded into segments must also reach the
		// pending overlay so cold reads, compaction, and the next manifest
		// commit carry them. (The scan above applied the in-memory effect
		// inline; applyRewrites does this split for the replay paths.)
		if fs := int(d.flushStart(ix)); fs > 0 {
			var coldRws []walRewrite
			for _, r := range flat {
				if r.Gid < fs {
					coldRws = append(coldRws, r)
				}
			}
			if len(coldRws) > 0 {
				d.addPending(coldRws)
			}
		}
	}
	return n, fanErr
}

// legacySearch reproduces the pre-sharding execution: materialize every
// matched document, stable-sort the full set, aggregate serially, then copy
// the requested window. Cursors work here too — the stable sort's tie order
// is insertion (gid) order, exactly the sharded pipeline's gid tie-break, so
// paged output is identical across both execution strategies.
func (ix *Index) legacySearch(req SearchRequest) (SearchResponse, error) {
	cur, err := parseSearchAfter(req)
	if err != nil {
		return SearchResponse{}, err
	}
	if cur != nil && len(req.Sort) == 0 {
		if fl := ix.retFloor.Load(); int64(cur.gid)+1 < fl {
			return SearchResponse{}, ErrCursorExpired
		}
	}
	matched, gids := ix.legacyMatch(req.Query)

	// Sort an index permutation so the document/gid pairing survives.
	ord := make([]int, len(matched))
	for i := range ord {
		ord[i] = i
	}
	if len(req.Sort) > 0 {
		sort.SliceStable(ord, func(i, j int) bool {
			return compareDocs(matched[ord[i]], matched[ord[j]], req.Sort)
		})
	}

	var aggs map[string]AggResult
	if len(req.Aggs) > 0 {
		aggs = make(map[string]AggResult, len(req.Aggs))
		for name, a := range req.Aggs {
			aggs[name] = a.apply(matched)
		}
	}

	total := len(matched)
	hits := ord
	if cur != nil {
		// The cursor's "after" predicate is monotone along the sorted order
		// (same comparators, gid tie-break), so the resume point is a prefix
		// length.
		start := 0
		for start < len(hits) && !cur.afterDoc(matched[hits[start]], gids[hits[start]], req.Sort) {
			start++
		}
		hits = hits[start:]
	}
	if req.From > 0 {
		if req.From >= len(hits) {
			hits = nil
		} else {
			hits = hits[req.From:]
		}
	}
	if req.Size > 0 && len(hits) > req.Size {
		hits = hits[:req.Size]
	}
	out := make([]Document, len(hits))
	for i, oi := range hits {
		out[i] = matched[oi]
	}
	var next []any
	if req.Size > 0 && len(hits) == req.Size {
		last := hits[len(hits)-1]
		next = nextAfterDoc(matched[last], gids[last], req.Sort)
	}
	return SearchResponse{Total: total, Hits: out, Aggs: aggs, NextAfter: next}, nil
}

// legacyMatch evaluates q serially and returns matched documents and their
// global ids in global insertion order. Like the rest of the legacy
// ablation it scans shard memory only (cold segment rows are not visited).
func (ix *Index) legacyMatch(q Query) ([]Document, []int) {
	S := len(ix.shards)
	base := int(ix.base.Load())
	parts := make([][]int32, S)
	docs := make([][]Document, S)
	for s, sh := range ix.shards {
		sh.mu.RLock()
		ids := sh.matchIDs(q, false)
		ds := make([]Document, len(ids))
		for i, id := range ids {
			ds[i] = sh.docView(id)
		}
		sh.mu.RUnlock()
		parts[s] = ids
		docs[s] = ds
	}
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make([]Document, 0, n)
	gids := make([]int, 0, n)
	cursors := make([]int, S)
	for len(out) < n {
		best, bestGID := -1, 0
		for s := range parts {
			c := cursors[s]
			if c >= len(parts[s]) {
				continue
			}
			gid := base + int(parts[s][c])*S + s
			if best == -1 || gid < bestGID {
				best, bestGID = s, gid
			}
		}
		out = append(out, docs[best][cursors[best]])
		gids = append(gids, bestGID)
		cursors[best]++
	}
	return out, gids
}

func compareDocs(a, b Document, sorts []SortField) bool {
	for _, s := range sorts {
		if r := cmpField(a[s.Field], b[s.Field], s.Desc); r != 0 {
			return r < 0
		}
	}
	return false
}

// cmpField orders two field values under one sort direction: numerically
// when both coerce, by key string otherwise. Returns -1, 0, or +1.
func cmpField(av, bv any, desc bool) int {
	af, aok := numeric(av)
	bf, bok := numeric(bv)
	var less, greater bool
	if aok && bok {
		less, greater = af < bf, af > bf
	} else {
		as, bs := keyString(av), keyString(bv)
		less, greater = as < bs, as > bs
	}
	switch {
	case less:
		if desc {
			return 1
		}
		return -1
	case greater:
		if desc {
			return -1
		}
		return 1
	default:
		return 0
	}
}
