package store

import (
	"sort"
	"sync"
)

// indexedFields are the keyword fields for which the index maintains posting
// lists, accelerating the term queries issued by the paper's dashboards
// (session, syscall, process/thread names).
var indexedFields = []string{"session", "syscall", "proc_name", "thread_name", "class"}

// Index stores the documents of one index and their posting lists.
type Index struct {
	mu       sync.RWMutex
	name     string
	docs     []Document
	postings map[string]map[string][]int // field -> term -> doc ids
}

// NewIndex creates an empty index.
func NewIndex(name string) *Index {
	p := make(map[string]map[string][]int, len(indexedFields))
	for _, f := range indexedFields {
		p[f] = make(map[string][]int)
	}
	return &Index{name: name, postings: p}
}

// Name returns the index name.
func (ix *Index) Name() string { return ix.name }

// Add indexes one document and returns its id.
func (ix *Index) Add(doc Document) int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.addLocked(doc)
}

// AddBulk indexes a batch of documents.
func (ix *Index) AddBulk(docs []Document) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, d := range docs {
		ix.addLocked(d)
	}
}

func (ix *Index) addLocked(doc Document) int {
	id := len(ix.docs)
	ix.docs = append(ix.docs, doc)
	for _, f := range indexedFields {
		if s, ok := doc[f].(string); ok {
			ix.postings[f][s] = append(ix.postings[f][s], id)
		}
	}
	return id
}

// Len returns the number of documents.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs)
}

// SearchRequest describes one search: a query, sorting, pagination, and
// aggregations over the matched set.
type SearchRequest struct {
	Query Query          `json:"query"`
	Sort  []SortField    `json:"sort,omitempty"`
	From  int            `json:"from,omitempty"`
	Size  int            `json:"size,omitempty"` // <=0 returns all hits
	Aggs  map[string]Agg `json:"aggs,omitempty"`
	// HitsOnly false with Size<0 suppresses hit materialization (aggs only).
}

// SortField orders results by a document field.
type SortField struct {
	Field string `json:"field"`
	Desc  bool   `json:"desc,omitempty"`
}

// SearchResponse is the result of a search.
type SearchResponse struct {
	Total int                  `json:"total"`
	Hits  []Document           `json:"hits"`
	Aggs  map[string]AggResult `json:"aggs,omitempty"`
}

// Search runs req against the index.
func (ix *Index) Search(req SearchRequest) SearchResponse {
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	matched := ix.matchLocked(req.Query)

	if len(req.Sort) > 0 {
		sort.SliceStable(matched, func(i, j int) bool {
			return compareDocs(matched[i], matched[j], req.Sort)
		})
	}

	var aggs map[string]AggResult
	if len(req.Aggs) > 0 {
		aggs = make(map[string]AggResult, len(req.Aggs))
		for name, a := range req.Aggs {
			aggs[name] = a.apply(matched)
		}
	}

	total := len(matched)
	hits := matched
	if req.From > 0 {
		if req.From >= len(hits) {
			hits = nil
		} else {
			hits = hits[req.From:]
		}
	}
	if req.Size > 0 && len(hits) > req.Size {
		hits = hits[:req.Size]
	}
	out := make([]Document, len(hits))
	copy(out, hits)
	return SearchResponse{Total: total, Hits: out, Aggs: aggs}
}

// matchLocked evaluates the query, using posting lists for top-level term
// queries on indexed keyword fields.
func (ix *Index) matchLocked(q Query) []Document {
	if q.Term != nil {
		if terms, ok := ix.postings[q.Term.Field]; ok {
			if val, isStr := q.Term.Value.(string); isStr {
				ids := terms[val]
				out := make([]Document, len(ids))
				for i, id := range ids {
					out[i] = ix.docs[id]
				}
				return out
			}
		}
	}
	// Bool-must with a leading indexed term: intersect from the posting list.
	if q.Bool != nil && len(q.Bool.Must) > 0 {
		if first := q.Bool.Must[0]; first.Term != nil {
			if terms, ok := ix.postings[first.Term.Field]; ok {
				if val, isStr := first.Term.Value.(string); isStr {
					rest := Query{Bool: &BoolQuery{
						Must:    q.Bool.Must[1:],
						Should:  q.Bool.Should,
						MustNot: q.Bool.MustNot,
					}}
					var out []Document
					for _, id := range terms[val] {
						if rest.Matches(ix.docs[id]) {
							out = append(out, ix.docs[id])
						}
					}
					return out
				}
			}
		}
	}
	var out []Document
	for _, d := range ix.docs {
		if q.Matches(d) {
			out = append(out, d)
		}
	}
	return out
}

// Count returns the number of documents matching q.
func (ix *Index) Count(q Query) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.matchLocked(q))
}

// UpdateByQuery applies fn to every matching document, in place, and
// returns the number of updated documents. fn must return true if it
// changed the document.
func (ix *Index) UpdateByQuery(q Query, fn func(Document) bool) int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	updated := 0
	for _, d := range ix.docs {
		if q.Matches(d) && fn(d) {
			updated++
		}
	}
	return updated
}

func compareDocs(a, b Document, sorts []SortField) bool {
	for _, s := range sorts {
		av, bv := a[s.Field], b[s.Field]
		af, aok := numeric(av)
		bf, bok := numeric(bv)
		var less, greater bool
		if aok && bok {
			less, greater = af < bf, af > bf
		} else {
			as, bs := keyString(av), keyString(bv)
			less, greater = as < bs, as > bs
		}
		if less {
			return !s.Desc
		}
		if greater {
			return s.Desc
		}
	}
	return false
}
