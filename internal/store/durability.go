package store

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dsrhaslab/dio-go/internal/durable"
	"github.com/dsrhaslab/dio-go/internal/event"
	"github.com/dsrhaslab/dio-go/internal/telemetry"
)

// Durable indices journal through gob for generic documents and rewrites
// (typed batches use the event binary codec). Gob round-trips int64 exactly;
// a JSON journal would coerce nanosecond timestamps through float64 and
// corrupt values above 2^53. These registrations cover every value type the
// schema and the NDJSON ingest path can place in a Document.
func init() {
	gob.Register(Document{})
	gob.Register(map[string]any{})
	gob.Register([]any{})
	gob.Register("")
	gob.Register(int(0))
	gob.Register(int64(0))
	gob.Register(uint64(0))
	gob.Register(float64(0))
	gob.Register(false)
}

// walRewrite is one update-by-query effect: the final document state of the
// row at Gid. Replay applies it onto the row the WAL prefix already rebuilt.
type walRewrite struct {
	Gid int
	Doc Document
}

// durTelemetry groups the durability instruments. All fields are nil-safe
// (the telemetry package's zero instruments discard observations), so the
// in-memory store carries a nil pointer at zero cost.
type durTelemetry struct {
	appendNS   *telemetry.Histogram
	fsyncNS    *telemetry.Histogram
	appends    *telemetry.Counter
	walBytes   *telemetry.Counter
	fsyncs     *telemetry.Counter
	snapshots  *telemetry.Counter
	snapshotNS *telemetry.Histogram
	recoveryNS *telemetry.Histogram
	replayedB  *telemetry.Counter
	replayedE  *telemetry.Counter
	tornTails  *telemetry.Counter
}

func newDurTelemetry(reg *telemetry.Registry) *durTelemetry {
	return &durTelemetry{
		appendNS:   reg.Histogram(telemetry.MetricWALAppendNS, "one WAL record append", nil),
		fsyncNS:    reg.Histogram(telemetry.MetricWALFsyncNS, "one WAL fsync", nil),
		appends:    reg.Counter(telemetry.MetricWALAppends, "WAL records appended"),
		walBytes:   reg.Counter(telemetry.MetricWALBytes, "WAL bytes appended"),
		fsyncs:     reg.Counter(telemetry.MetricWALFsyncs, "WAL fsyncs issued"),
		snapshots:  reg.Counter(telemetry.MetricSnapshots, "segment snapshots committed"),
		snapshotNS: reg.Histogram(telemetry.MetricSnapshotNS, "one segment snapshot", nil),
		recoveryNS: reg.Histogram(telemetry.MetricRecoveryNS, "one index recovery", nil),
		replayedB:  reg.Counter(telemetry.MetricReplayedBatches, "WAL batches replayed during recovery"),
		replayedE:  reg.Counter(telemetry.MetricReplayedEvents, "rows rebuilt from replayed WAL batches"),
		tornTails:  reg.Counter(telemetry.MetricWALTornTails, "torn WAL tails truncated during recovery"),
	}
}

// indexDurable is one index's durability state. Lock order: ubqMu → gate →
// shard locks → appendMu; the WAL's own mutex nests innermost.
//
// The gate makes snapshots consistent: every mutating operation (bulk adds,
// update-by-query) holds gate.RLock across both its WAL append and its
// in-memory application, so when snapshot takes gate.Lock, memory state
// equals exactly the state the WAL prefix reproduces — the invariant that
// lets the snapshot atomically supersede the log.
type indexDurable struct {
	dir   string
	fsync FsyncPolicy
	tm    *durTelemetry

	gate     sync.RWMutex // writers share; snapshot excludes
	appendMu sync.Mutex   // serializes WAL append + gid reservation
	ubqMu    sync.Mutex   // serializes update-by-query journaling

	wal        *durable.WAL
	walSeq     int
	segSeq     int
	hasSegment bool
	segRows    int

	// Replication sequence accounting. Every journaled record gets the next
	// sequence number; the segment holds [0, baseSeq), the live WAL holds
	// [baseSeq, recSeq). baseSeq is gate-guarded (it only moves under the
	// snapshot's exclusive gate); recSeq is bumped inside appendMu so sequence
	// order equals WAL record order.
	baseSeq int64
	recSeq  atomic.Int64
	// replOff aligns a follower to its primary: primary seq == local recSeq +
	// replOff. Zero on primaries and on followers that never bootstrapped.
	replOff atomic.Int64
	// tail buffers recent WAL records in memory for the replication shipper,
	// so lagging followers survive a snapshot without a full bootstrap.
	tail *replTail

	dirty     atomic.Int64 // records appended since the last snapshot
	unsynced  atomic.Bool  // bytes appended since the last fsync
	segGauge  atomic.Bool  // hasSegment, readable without the gate
	lastFsync atomic.Int64 // unix ns of the last completed fsync (0 = never)
	lastSnap  atomic.Int64 // unix ns of the last committed snapshot (0 = never)
}

// encodePool recycles WAL payload scratch buffers across appends.
var encodePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 16*1024)
	return &b
}}

func encodeGob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("store: gob journal encode: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeGob(payload []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("store: gob journal decode: %w", err)
	}
	return nil
}

// journalApply journals one record and — when apply is non-nil — reserves
// `reserve` global ids and applies the batch to shard storage, all inside
// the append mutex. Holding the mutex across both steps makes in-memory
// placement order identical to WAL record order even under concurrent
// writers, which is what lets replay reproduce the original placement and
// lets rewrite records name rows by global id. The caller holds gate.RLock.
//
// owned declares that payload's buffer belongs to this call: when the
// replication tail is armed, an owned payload is handed to the buffer
// without copying (the caller must not reuse it afterward), while an
// unowned one — a pooled scratch the caller will recycle — is cloned.
// Callers with pooled buffers avoid the clone by checking replOwns first
// and withholding the buffer from the pool (see AddEvents).
func (ix *Index) journalApply(t durable.RecordType, payload []byte, owned bool, reserve int, apply func(start int)) error {
	d := ix.dur
	d.appendMu.Lock()
	startT := time.Now()
	n, err := d.wal.Append(t, payload)
	appendDone := time.Now()
	if err != nil {
		d.appendMu.Unlock()
		return err
	}
	if apply != nil {
		start := int(ix.rr.Add(uint64(reserve)) - uint64(reserve))
		apply(start)
	}
	// The record's replication sequence is assigned inside appendMu, so
	// sequence order == WAL order == placement order.
	seq := d.recSeq.Add(1) - 1
	if d.tail.wants() {
		if !owned {
			payload = bytes.Clone(payload)
		}
		d.tail.push(seq, t, payload)
	}
	d.appendMu.Unlock()
	d.dirty.Add(1)
	d.unsynced.Store(true)
	d.tm.appendNS.Observe(float64(appendDone.Sub(startT)))
	d.tm.appends.Inc()
	d.tm.walBytes.Add(uint64(n))
	if d.fsync == FsyncAlways {
		return d.syncWAL()
	}
	return nil
}

// syncWAL flushes the live WAL if anything was appended since the last
// flush. Safe against the snapshot's WAL swap: the handle is read under the
// append mutex and the superseded WAL is synced by its own Close.
func (d *indexDurable) syncWAL() error {
	if !d.unsynced.Swap(false) {
		return nil
	}
	d.appendMu.Lock()
	w := d.wal
	d.appendMu.Unlock()
	startT := time.Now()
	err := w.Sync()
	d.tm.fsyncNS.Observe(float64(time.Since(startT)))
	d.tm.fsyncs.Inc()
	if err == nil {
		d.lastFsync.Store(time.Now().UnixNano())
	}
	return err
}

// sliceRows adapts a pre-built row snapshot to durable.RowSource.
type sliceRows []durable.SegmentRow

func (r sliceRows) NumRows() int                 { return len(r) }
func (r sliceRows) Row(i int) durable.SegmentRow { return r[i] }

// rowSource snapshots the index's rows in global-id order for the segment
// writer. Typed rows are referenced in place (the snapshot gate excludes
// every mutator for the duration of the write); generic documents are
// gob-encoded now, under the shard read locks.
func (ix *Index) rowSource() (durable.RowSource, int, error) {
	S := len(ix.shards)
	n := ix.Len()
	rows := make([]durable.SegmentRow, n)
	for s, sh := range ix.shards {
		sh.mu.RLock()
		for local := range sh.docs {
			g := local*S + s
			if d := sh.docs[local]; d != nil {
				b, err := encodeGob(d)
				if err != nil {
					sh.mu.RUnlock()
					return nil, 0, err
				}
				rows[g] = durable.SegmentRow{Doc: b}
			} else {
				rows[g] = durable.SegmentRow{Event: &sh.events[local]}
			}
		}
		sh.mu.RUnlock()
	}
	return sliceRows(rows), n, nil
}

// snapshot writes a columnar segment of the index's current rows and
// supersedes the WAL. The sequence is crash-atomic at every step:
//
//  1. create the next WAL file (empty; an orphan from a previous crash is
//     truncated away),
//  2. write the segment to a temporary file, fsync, rename into place,
//  3. commit the manifest naming (new segment, new WAL) — the atomic
//     commit point: before this rename recovery uses the old pair, after
//     it the new,
//  4. swap the live WAL handle and delete the superseded files.
//
// Searches proceed concurrently (the writer takes only read locks); writers
// wait on the gate, which also guarantees memory state == WAL state.
func (d *indexDurable) snapshot(ix *Index, force bool) error {
	if d.dirty.Load() == 0 && !force {
		return nil
	}
	startT := time.Now()
	d.gate.Lock()
	defer d.gate.Unlock()
	newWALSeq, newSegSeq := d.walSeq+1, d.segSeq+1
	newWALPath := filepath.Join(d.dir, durable.WALName(newWALSeq))
	os.Remove(newWALPath)
	newWAL, err := durable.OpenWAL(newWALPath)
	if err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	src, rows, err := ix.rowSource()
	if err != nil {
		newWAL.Close()
		return err
	}
	segPath := filepath.Join(d.dir, durable.SegmentName(newSegSeq))
	if _, err := durable.WriteSegment(segPath, len(ix.shards), src); err != nil {
		newWAL.Close()
		return err
	}
	// Under the exclusive gate no writer is mid-append, so recSeq is the exact
	// sequence of the segment's last record + 1: the new (empty) WAL's records
	// will carry sequences from there, which BaseSeq records for recovery and
	// the replication tail reader.
	headSeq := d.recSeq.Load()
	m := durable.Manifest{
		Version:    1,
		Shards:     len(ix.shards),
		WALSeq:     newWALSeq,
		SegmentSeq: newSegSeq,
		HasSegment: true,
		BaseSeq:    headSeq,
		ReplOffset: d.replOff.Load(),
	}
	if err := durable.CommitManifest(d.dir, m); err != nil {
		newWAL.Close()
		return err
	}
	d.appendMu.Lock()
	old := d.wal
	d.wal = newWAL
	d.appendMu.Unlock()
	d.walSeq, d.segSeq, d.hasSegment, d.segRows = newWALSeq, newSegSeq, true, rows
	d.baseSeq = headSeq
	d.dirty.Store(0)
	d.segGauge.Store(true)
	d.lastSnap.Store(time.Now().UnixNano())
	if err := old.Close(); err != nil {
		return err
	}
	durable.CleanOrphans(d.dir, m)
	d.tm.snapshots.Inc()
	d.tm.snapshotNS.Observe(float64(time.Since(startT)))
	return nil
}

// close syncs and closes the index's WAL. Taken under the gate so no writer
// is mid-append.
func (d *indexDurable) close() error {
	d.gate.Lock()
	defer d.gate.Unlock()
	return d.wal.Close()
}

// indexDirName maps an index name to its directory: PathEscape keeps "/",
// ".", and ".." from ever reaching the filesystem as path structure.
func indexDirName(name string) string { return "ix-" + url.PathEscape(name) }

// removeIndexDir deletes a dropped index's on-disk state.
func removeIndexDir(dir string) error { return os.RemoveAll(dir) }

// indexDirToName inverts indexDirName.
func indexDirToName(dir string) (string, bool) {
	esc, ok := strings.CutPrefix(dir, "ix-")
	if !ok {
		return "", false
	}
	name, err := url.PathUnescape(esc)
	if err != nil {
		return "", false
	}
	return name, true
}

// newDurableIndex creates a fresh durable index: an empty directory with
// WAL sequence 0 and no manifest (the manifest appears with the first
// snapshot; recovery treats its absence as "replay wal-000000 from zero").
func (s *Store) newDurableIndex(name string) (*Index, error) {
	dir := filepath.Join(s.opts.dataDir, indexDirName(name))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create index dir: %w", err)
	}
	w, err := durable.OpenWAL(filepath.Join(dir, durable.WALName(0)))
	if err != nil {
		return nil, err
	}
	ix := newIndexSized(name, s.opts.shards, s.opts.rollupBase)
	ix.dur = &indexDurable{
		dir: dir, fsync: s.opts.fsync, tm: s.dtm, wal: w,
		tail: newReplTail(s.opts.replTailBytes, &s.replArmed),
	}
	return ix, nil
}

// recoverIndex rebuilds one index from its directory: committed segment
// first (when the manifest names one), then WAL replay on top, with torn
// tails truncated. The row count afterwards satisfies the recovery
// conservation invariant: rows == segment rows + replayed WAL rows.
func (s *Store) recoverIndex(name, dir string) (*Index, error) {
	startT := time.Now()
	m, committed, err := durable.LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	shards := s.opts.shards
	if committed {
		shards = m.Shards
	}
	ix := newIndexSized(name, shards, s.opts.rollupBase)
	d := &indexDurable{
		dir: dir, fsync: s.opts.fsync, tm: s.dtm,
		tail: newReplTail(s.opts.replTailBytes, &s.replArmed),
	}
	if committed {
		d.walSeq, d.segSeq, d.hasSegment = m.WALSeq, m.SegmentSeq, m.HasSegment
		d.baseSeq = m.BaseSeq
		d.replOff.Store(m.ReplOffset)
	}
	if d.hasSegment {
		info, err := durable.ReadSegment(filepath.Join(dir, durable.SegmentName(d.segSeq)), ix.placeRecoveredRow)
		if err != nil {
			return nil, fmt.Errorf("store: recover %q: %w", name, err)
		}
		d.segRows = info.Rows
		ix.rr.Store(uint64(info.Rows))
		d.segGauge.Store(true)
	}
	walPath := filepath.Join(dir, durable.WALName(d.walSeq))
	replayedRows := 0
	stats, err := durable.ReplayWAL(walPath, func(t durable.RecordType, payload []byte) error {
		n, err := ix.applyWALRecord(t, payload)
		replayedRows += n
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("store: recover %q: %w", name, err)
	}
	if stats.Torn {
		s.dtm.tornTails.Inc()
	}
	// Replayed records are un-snapshotted state: seed the dirty counter so
	// the next snapshot knows the live WAL still holds them (otherwise a
	// snapshot right after recovery would no-op and the WAL would grow
	// forever across restarts).
	d.dirty.Store(int64(stats.Records))
	// The head sequence is re-derived, not stored: the segment ends at
	// BaseSeq and the live WAL carries exactly stats.Records records past it.
	// On a follower, the applied primary sequence is the head plus the
	// bootstrap offset — which is exactly the replication resume point, so a
	// cleanly restarted follower asks for frames from where it left off
	// instead of re-requesting the whole stream.
	d.recSeq.Store(d.baseSeq + int64(stats.Records))
	ix.replSeq.Store(d.replOff.Load() + d.recSeq.Load())
	s.dtm.replayedB.Add(uint64(stats.Records))
	s.dtm.replayedE.Add(uint64(replayedRows))
	durable.CleanOrphans(dir, durable.Manifest{WALSeq: d.walSeq, SegmentSeq: d.segSeq, HasSegment: d.hasSegment})
	w, err := durable.OpenWAL(walPath)
	if err != nil {
		return nil, err
	}
	d.wal = w
	ix.dur = d
	s.dtm.recoveryNS.Observe(float64(time.Since(startT)))
	return ix, nil
}

// placeRecoveredRow inserts one segment row. Segment rows arrive in
// ascending contiguous gid order, so each lands exactly at its shard's
// append position — verified, since placement integrity is what keeps gid
// arithmetic (gid = local*S + shard) valid for the WAL replay that follows.
func (ix *Index) placeRecoveredRow(gid int, ev *event.Event, docBytes []byte) error {
	S := len(ix.shards)
	sh := ix.shards[gid%S]
	if gid/S != len(sh.docs) {
		return fmt.Errorf("%w: row gid %d out of order", durable.ErrCorruptSegment, gid)
	}
	if ev != nil {
		sh.addEventLocked(ev)
		return nil
	}
	var doc Document
	if err := decodeGob(docBytes, &doc); err != nil {
		return fmt.Errorf("%w: generic row gid %d: %v", durable.ErrCorruptSegment, gid, err)
	}
	// Generic rows void the typed-schema guarantee the cache fingerprint's
	// integer range folding relies on, exactly as a live addBulkAt would.
	ix.generic.Add(1)
	sh.addLocked(doc)
	return nil
}

// applyWALRecord replays one journal record, returning how many rows it
// added (zero for rewrites).
func (ix *Index) applyWALRecord(t durable.RecordType, payload []byte) (int, error) {
	switch t {
	case durable.RecordEvents:
		events, err := event.DecodeBatch(payload, nil)
		if err != nil {
			return 0, fmt.Errorf("store: replay events record: %w", err)
		}
		start := int(ix.rr.Add(uint64(len(events))) - uint64(len(events)))
		ix.addEventsAt(start, events)
		return len(events), nil
	case durable.RecordDocs:
		var docs []Document
		if err := decodeGob(payload, &docs); err != nil {
			return 0, err
		}
		start := int(ix.rr.Add(uint64(len(docs))) - uint64(len(docs)))
		ix.addBulkAt(start, docs)
		return len(docs), nil
	case durable.RecordRewrite:
		var rws []walRewrite
		if err := decodeGob(payload, &rws); err != nil {
			return 0, err
		}
		return 0, ix.applyRewrites(rws)
	default:
		return 0, fmt.Errorf("store: unknown wal record type %d", t)
	}
}

// applyRewrites replays a batch of update-by-query effects onto existing
// rows. Each row's representation is preserved: a typed slot takes the
// document back through the schema (exactly what the live UpdateByQuery
// write-back does), a generic slot is replaced wholesale. Shard locks are
// held per shard, so the same path serves single-threaded recovery and a
// live follower applying replicated rewrites while searches run; the
// invalidations mirror the live UpdateByQuery (in-place rewrites mutate rows
// the rollups already counted and don't route through an epoch-bumping
// mutator).
func (ix *Index) applyRewrites(rws []walRewrite) error {
	ix.epoch.Add(1)
	defer ix.epoch.Add(1)
	S := len(ix.shards)
	head := int(ix.rr.Load())
	byShard := make(map[int][]walRewrite)
	for _, r := range rws {
		if r.Gid < 0 || r.Gid >= head {
			return fmt.Errorf("store: rewrite of unknown gid %d", r.Gid)
		}
		byShard[r.Gid%S] = append(byShard[r.Gid%S], r)
	}
	for s, list := range byShard {
		sh := ix.shards[s]
		sh.mu.Lock()
		for _, r := range list {
			local := r.Gid / S
			if sh.docs[local] != nil {
				before := docTerms(sh.docs[local])
				sh.docs[local] = r.Doc
				sh.repostLocked(int32(local), before, docTerms(r.Doc))
			} else {
				before := eventTerms(&sh.events[local])
				sh.events[local] = DocToEvent(r.Doc)
				sh.repostLocked(int32(local), before, eventTerms(&sh.events[local]))
			}
		}
		sh.invalidateColumnsLocked()
		sh.invalidateRollupLocked()
		sh.mu.Unlock()
	}
	return nil
}

// loadDataDir recovers every index directory under the store's data dir.
func (s *Store) loadDataDir() error {
	entries, err := os.ReadDir(s.opts.dataDir)
	if err != nil {
		return fmt.Errorf("store: read data dir: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name, ok := indexDirToName(e.Name())
		if !ok {
			continue
		}
		ix, err := s.recoverIndex(name, filepath.Join(s.opts.dataDir, e.Name()))
		if err != nil {
			return err
		}
		s.attachReadPath(ix)
		s.indices[name] = ix
		s.registerIndexGauge(name, ix)
	}
	return nil
}

// fsyncLoop flushes every durable index's WAL on the configured interval.
func (s *Store) fsyncLoop() {
	defer s.loopWG.Done()
	t := time.NewTicker(s.opts.fsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
			for _, ix := range s.allIndices() {
				if ix.dur != nil {
					_ = ix.dur.syncWAL()
				}
			}
		}
	}
}

// snapshotLoop periodically snapshots every durable index that journaled
// anything since its last snapshot.
func (s *Store) snapshotLoop() {
	defer s.loopWG.Done()
	t := time.NewTicker(s.opts.snapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
			_ = s.Snapshot()
		}
	}
}

// Snapshot writes a segment snapshot for every durable index with journaled
// writes since its last snapshot, truncating their WALs. On an in-memory
// store it is a no-op. The first error is returned; remaining indices are
// still attempted.
func (s *Store) Snapshot() error {
	var first error
	for _, ix := range s.allIndices() {
		if ix.dur == nil {
			continue
		}
		if err := ix.dur.snapshot(ix, false); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close stops the background fsync/snapshot loops and syncs and closes
// every WAL. The store must not be used after Close. In-memory stores
// close trivially.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	if s.stopCh != nil {
		close(s.stopCh)
	}
	s.loopWG.Wait()
	var first error
	for _, ix := range s.allIndices() {
		if ix.dur == nil {
			continue
		}
		if err := ix.dur.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// allIndices snapshots the index set under the store lock.
func (s *Store) allIndices() []*Index {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Index, 0, len(s.indices))
	for _, ix := range s.indices {
		out = append(out, ix)
	}
	return out
}

// segmentCount reports how many durable indices have a committed segment
// (the dio_store_segments gauge).
func (s *Store) segmentCount() float64 {
	n := 0
	for _, ix := range s.allIndices() {
		if ix.dur != nil && ix.dur.segGauge.Load() {
			n++
		}
	}
	return float64(n)
}
