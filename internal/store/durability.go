package store

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dsrhaslab/dio-go/internal/durable"
	"github.com/dsrhaslab/dio-go/internal/event"
	"github.com/dsrhaslab/dio-go/internal/telemetry"
)

// Durable indices journal through gob for generic documents and rewrites
// (typed batches use the event binary codec). Gob round-trips int64 exactly;
// a JSON journal would coerce nanosecond timestamps through float64 and
// corrupt values above 2^53. These registrations cover every value type the
// schema and the NDJSON ingest path can place in a Document.
func init() {
	gob.Register(Document{})
	gob.Register(map[string]any{})
	gob.Register([]any{})
	gob.Register("")
	gob.Register(int(0))
	gob.Register(int64(0))
	gob.Register(uint64(0))
	gob.Register(float64(0))
	gob.Register(false)
}

// walRewrite is one update-by-query effect: the final document state of the
// row at Gid. Replay applies it onto the row the WAL prefix already rebuilt.
type walRewrite struct {
	Gid int
	Doc Document
}

// durTelemetry groups the durability instruments. All fields are nil-safe
// (the telemetry package's zero instruments discard observations), so the
// in-memory store carries a nil pointer at zero cost.
type durTelemetry struct {
	appendNS       *telemetry.Histogram
	fsyncNS        *telemetry.Histogram
	appends        *telemetry.Counter
	walBytes       *telemetry.Counter
	fsyncs         *telemetry.Counter
	snapshots      *telemetry.Counter
	snapshotNS     *telemetry.Histogram
	recoveryNS     *telemetry.Histogram
	replayedB      *telemetry.Counter
	replayedE      *telemetry.Counter
	tornTails      *telemetry.Counter
	compactions    *telemetry.Counter
	retentionDrops *telemetry.Counter
}

func newDurTelemetry(reg *telemetry.Registry) *durTelemetry {
	return &durTelemetry{
		appendNS:       reg.Histogram(telemetry.MetricWALAppendNS, "one WAL record append", nil),
		fsyncNS:        reg.Histogram(telemetry.MetricWALFsyncNS, "one WAL fsync", nil),
		appends:        reg.Counter(telemetry.MetricWALAppends, "WAL records appended"),
		walBytes:       reg.Counter(telemetry.MetricWALBytes, "WAL bytes appended"),
		fsyncs:         reg.Counter(telemetry.MetricWALFsyncs, "WAL fsyncs issued"),
		snapshots:      reg.Counter(telemetry.MetricSnapshots, "segment snapshots committed"),
		snapshotNS:     reg.Histogram(telemetry.MetricSnapshotNS, "one segment snapshot", nil),
		recoveryNS:     reg.Histogram(telemetry.MetricRecoveryNS, "one index recovery", nil),
		replayedB:      reg.Counter(telemetry.MetricReplayedBatches, "WAL batches replayed during recovery"),
		replayedE:      reg.Counter(telemetry.MetricReplayedEvents, "rows rebuilt from replayed WAL batches"),
		tornTails:      reg.Counter(telemetry.MetricWALTornTails, "torn WAL tails truncated during recovery"),
		compactions:    reg.Counter(telemetry.MetricCompactions, "segment compaction merges committed"),
		retentionDrops: reg.Counter(telemetry.MetricRetentionDrops, "segments dropped by the retention horizon"),
	}
}

// indexDurable is one index's durability state. Lock order: ubqMu → gate →
// shard locks → appendMu; the WAL's own mutex nests innermost. pendMu is a
// leaf taken under gate.RLock by writers, so holding the exclusive gate
// alone already excludes every pending-map mutator.
//
// The gate makes snapshots consistent: every mutating operation (bulk adds,
// update-by-query) holds gate.RLock across both its WAL append and its
// in-memory application, so when snapshot takes gate.Lock, memory state
// equals exactly the state the WAL prefix reproduces — the invariant that
// lets the snapshot atomically supersede the log.
//
// Tiered layout: committed rows live in the immutable leveled segment list
// (segs); rows below the index's base are cold (segment-only, evicted from
// shard memory when retention is on), rows at or above it are hot (shard
// memory at memgid = gid - base). Every segment-list publication happens
// under the exclusive gate plus every shard write lock; searches capture
// (base, segs, pending) after taking all shard read locks, so a consistent
// cut needs no segment refcounts — obsolete files are deleted only after
// those locks release.
type indexDurable struct {
	dir       string
	fsync     FsyncPolicy
	tm        *durTelemetry
	retention time.Duration // drop whole cold segments older than this (0 = keep forever)

	gate     sync.RWMutex // writers share; snapshot/compaction/retention exclude
	appendMu sync.Mutex   // serializes WAL append + gid reservation
	ubqMu    sync.Mutex   // serializes update-by-query journaling

	wal    *durable.WAL
	walSeq int
	segSeq int // next unused segment sequence (== manifest SegmentSeq)

	// segs is the committed leveled segment list in ascending row order,
	// published atomically so searches read it lock-free. The pointed-to slice
	// is immutable; every change installs a fresh slice.
	segs atomic.Pointer[[]durable.SegmentMeta]

	// pending is the post-flush rewrite overlay: update-by-query effects on
	// rows already folded into segments. Cold reads, compaction merges, and
	// replication bootstraps substitute these documents for the stored rows;
	// the map persists in the manifest (Manifest.Rewrites) and is rebuilt by
	// recovery. pendVer detects concurrent growth so compaction only clears
	// entries it actually folded into its output.
	pendMu  sync.Mutex
	pending map[int]Document
	pendVer uint64

	// Replication sequence accounting. Every journaled record gets the next
	// sequence number; the segments hold [0, baseSeq), the live WAL holds
	// [baseSeq, recSeq). baseSeq is gate-guarded (it only moves under the
	// snapshot's exclusive gate); recSeq is bumped inside appendMu so sequence
	// order equals WAL record order.
	baseSeq int64
	recSeq  atomic.Int64
	// replOff aligns a follower to its primary: primary seq == local recSeq +
	// replOff. Zero on primaries and on followers that never bootstrapped.
	replOff atomic.Int64
	// tail buffers recent WAL records in memory for the replication shipper,
	// so lagging followers survive a snapshot without a full bootstrap.
	tail *replTail

	dirty     atomic.Int64 // records appended since the last snapshot
	unsynced  atomic.Bool  // bytes appended since the last fsync
	lastFsync atomic.Int64 // unix ns of the last completed fsync (0 = never)
	lastSnap  atomic.Int64 // unix ns of the last committed snapshot (0 = never)
}

// segsEnd returns one past the last row any listed segment covers (0 with
// no segments).
func segsEnd(segs []durable.SegmentMeta) int64 {
	if len(segs) == 0 {
		return 0
	}
	return segs[len(segs)-1].EndRow
}

// coldRowCount sums the rows of segments wholly below base — the rows only
// reachable through segment files, which Len must count on top of shard
// memory.
func coldRowCount(segs []durable.SegmentMeta, base int64) int64 {
	var n int64
	for _, sm := range segs {
		if sm.EndRow <= base {
			n += sm.Rows
		}
	}
	return n
}

// flushStart is the first row id the next flush must write: everything the
// segments already cover, floored at the eviction base — retention can drop
// the last cold segment, and flushing from the raw segment end would then
// reach below the base into rows that no longer exist in shard memory.
func (d *indexDurable) flushStart(ix *Index) int64 {
	fs := segsEnd(*d.segs.Load())
	if b := ix.base.Load(); b > fs {
		fs = b
	}
	return fs
}

// publishSegsLocked installs a new segment list and recomputes the cold-row
// count. Caller holds the exclusive gate and every shard write lock (the
// publication point of the no-refcount reader protocol).
func (d *indexDurable) publishSegsLocked(ix *Index, segs []durable.SegmentMeta) {
	d.segs.Store(&segs)
	ix.coldRows.Store(coldRowCount(segs, ix.base.Load()))
}

// pendingOverlay copies the pending rewrite map for a lock-free read pass
// (nil when empty).
func (d *indexDurable) pendingOverlay() map[int]Document {
	d.pendMu.Lock()
	defer d.pendMu.Unlock()
	if len(d.pending) == 0 {
		return nil
	}
	out := make(map[int]Document, len(d.pending))
	for g, doc := range d.pending {
		out[g] = doc
	}
	return out
}

// addPending records post-flush rewrites into the overlay. Caller holds
// gate.RLock (the pendVer bump must be ordered against compaction's
// clear-if-unchanged check, which runs under the exclusive gate).
func (d *indexDurable) addPending(rws []walRewrite) {
	d.pendMu.Lock()
	if d.pending == nil {
		d.pending = make(map[int]Document, len(rws))
	}
	for _, r := range rws {
		d.pending[r.Gid] = r.Doc
	}
	d.pendVer++
	d.pendMu.Unlock()
}

// pendingBlob serializes the pending overlay (minus entries drop selects)
// for a manifest commit, sorted by gid so identical states encode
// identically. Returns nil bytes for an empty overlay.
func (d *indexDurable) pendingBlob(drop func(gid int) bool) ([]byte, error) {
	d.pendMu.Lock()
	rws := make([]walRewrite, 0, len(d.pending))
	for g, doc := range d.pending {
		if drop != nil && drop(g) {
			continue
		}
		rws = append(rws, walRewrite{Gid: g, Doc: doc})
	}
	d.pendMu.Unlock()
	if len(rws) == 0 {
		return nil, nil
	}
	sort.Slice(rws, func(i, j int) bool { return rws[i].Gid < rws[j].Gid })
	return encodeGob(rws)
}

// encodePool recycles WAL payload scratch buffers across appends.
var encodePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 16*1024)
	return &b
}}

func encodeGob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("store: gob journal encode: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeGob(payload []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("store: gob journal decode: %w", err)
	}
	return nil
}

// journalApply journals one record and — when apply is non-nil — reserves
// `reserve` global ids and applies the batch to shard storage, all inside
// the append mutex. Holding the mutex across both steps makes in-memory
// placement order identical to WAL record order even under concurrent
// writers, which is what lets replay reproduce the original placement and
// lets rewrite records name rows by global id. The caller holds gate.RLock.
//
// owned declares that payload's buffer belongs to this call: when the
// replication tail is armed, an owned payload is handed to the buffer
// without copying (the caller must not reuse it afterward), while an
// unowned one — a pooled scratch the caller will recycle — is cloned.
// Callers with pooled buffers avoid the clone by checking replOwns first
// and withholding the buffer from the pool (see AddEvents).
func (ix *Index) journalApply(t durable.RecordType, payload []byte, owned bool, reserve int, apply func(start int)) error {
	d := ix.dur
	d.appendMu.Lock()
	startT := time.Now()
	n, err := d.wal.Append(t, payload)
	appendDone := time.Now()
	if err != nil {
		d.appendMu.Unlock()
		return err
	}
	if apply != nil {
		start := int(ix.rr.Add(uint64(reserve)) - uint64(reserve))
		apply(start)
	}
	// The record's replication sequence is assigned inside appendMu, so
	// sequence order == WAL order == placement order.
	seq := d.recSeq.Add(1) - 1
	if d.tail.wants() {
		if !owned {
			payload = bytes.Clone(payload)
		}
		d.tail.push(seq, t, payload)
	}
	d.appendMu.Unlock()
	d.dirty.Add(1)
	d.unsynced.Store(true)
	d.tm.appendNS.Observe(float64(appendDone.Sub(startT)))
	d.tm.appends.Inc()
	d.tm.walBytes.Add(uint64(n))
	if d.fsync == FsyncAlways {
		return d.syncWAL()
	}
	return nil
}

// syncWAL flushes the live WAL if anything was appended since the last
// flush. Safe against the snapshot's WAL swap: the handle is read under the
// append mutex and the superseded WAL is synced by its own Close.
func (d *indexDurable) syncWAL() error {
	if !d.unsynced.Swap(false) {
		return nil
	}
	d.appendMu.Lock()
	w := d.wal
	d.appendMu.Unlock()
	startT := time.Now()
	err := w.Sync()
	d.tm.fsyncNS.Observe(float64(time.Since(startT)))
	d.tm.fsyncs.Inc()
	if err == nil {
		d.lastFsync.Store(time.Now().UnixNano())
	}
	return err
}

// sliceRows adapts a pre-built row snapshot to durable.RowSource.
type sliceRows []durable.SegmentRow

func (r sliceRows) NumRows() int                 { return len(r) }
func (r sliceRows) Row(i int) durable.SegmentRow { return r[i] }

// flushRows snapshots rows [start, head) in global-id order for the segment
// writer. Typed rows are referenced in place; generic documents are
// gob-encoded now and stamped with their time_enter_ns so the segment's
// pruning range covers them. No shard locks are taken: the caller holds the
// exclusive snapshot gate, which excludes every row mutator (adds, replays,
// update-by-query), and concurrent searches only read.
func (ix *Index) flushRows(start, head int) (durable.RowSource, error) {
	S := len(ix.shards)
	base := int(ix.base.Load())
	rows := make([]durable.SegmentRow, head-start)
	for g := start; g < head; g++ {
		mg := g - base
		sh := ix.shards[mg%S]
		local := mg / S
		if d := sh.docs[local]; d != nil {
			b, err := encodeGob(d)
			if err != nil {
				return nil, err
			}
			r := durable.SegmentRow{Doc: b}
			if f, ok := numeric(d[FieldTimeEnter]); ok {
				r.DocTime, r.DocTimed = int64(f), true
			}
			rows[g-start] = r
		} else {
			rows[g-start] = durable.SegmentRow{Event: &sh.events[local]}
		}
	}
	return sliceRows(rows), nil
}

// snapshot folds the live WAL into the leveled segment layout: it writes a
// new level-0 segment of every row past the flush start, commits a manifest
// appending it to the segment list, and supersedes the WAL. The sequence is
// crash-atomic at every step:
//
//  1. create the next WAL file (empty; an orphan from a previous crash is
//     truncated away),
//  2. write the new segment to a temporary file, fsync, rename into place,
//  3. commit the manifest naming (segment list, new WAL, pending-rewrite
//     overlay) — the atomic commit point: before this rename recovery uses
//     the old state, after it the new,
//  4. swap the live WAL handle, publish the new segment list, and delete the
//     superseded files.
//
// With retention enabled the flush also evicts: every shard's row storage is
// cleared in place and the index base advances to the head, so shard memory
// holds only rows newer than the last flush — the bounded-RSS mode. The
// eviction changes no visible data (the rows remain readable through the
// cold path), so the index epoch does not move.
//
// Searches proceed concurrently until the final publication (the writer
// takes shard write locks only for the list/base swap); writers wait on the
// gate, which also guarantees memory state == WAL state.
func (d *indexDurable) snapshot(ix *Index, force bool) error {
	if d.dirty.Load() == 0 && !force {
		return nil
	}
	startT := time.Now()
	d.gate.Lock()
	defer d.gate.Unlock()
	newWALSeq := d.walSeq + 1
	newWALPath := filepath.Join(d.dir, durable.WALName(newWALSeq))
	os.Remove(newWALPath)
	newWAL, err := durable.OpenWAL(newWALPath)
	if err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	segs := *d.segs.Load()
	base := ix.base.Load()
	fs := d.flushStart(ix)
	head := int64(ix.rr.Load())
	newSegs := segs
	if head > fs {
		src, err := ix.flushRows(int(fs), int(head))
		if err != nil {
			newWAL.Close()
			return err
		}
		seq := d.segSeq
		info, err := durable.WriteSegment(filepath.Join(d.dir, durable.SegmentName(seq)), len(ix.shards), src)
		if err != nil {
			newWAL.Close()
			return err
		}
		// Claimed only after the write succeeded; a crash between here and the
		// manifest commit leaves an orphan file recovery's CleanOrphans removes.
		d.segSeq++
		meta := durable.SegmentMeta{
			Seq: seq, Level: 0,
			Rows: head - fs, StartRow: fs, EndRow: head,
			MinTime: info.MinTime, MaxTime: info.MaxTime,
			Bytes: info.Bytes, Generic: int64(info.Generic),
		}
		newSegs = append(append([]durable.SegmentMeta(nil), segs...), meta)
	}
	// Under the exclusive gate no writer is mid-append, so recSeq is the exact
	// sequence of the flushed rows' last record + 1: the new (empty) WAL's
	// records will carry sequences from there, which BaseSeq records for
	// recovery and the replication tail reader.
	headSeq := d.recSeq.Load()
	blob, err := d.pendingBlob(nil)
	if err != nil {
		newWAL.Close()
		return err
	}
	m := durable.Manifest{
		Shards:         len(ix.shards),
		WALSeq:         newWALSeq,
		SegmentSeq:     d.segSeq,
		Segments:       newSegs,
		BaseSeq:        headSeq,
		ReplOffset:     d.replOff.Load(),
		RetentionFloor: ix.retFloor.Load(),
		Rewrites:       blob,
	}
	if err := durable.CommitManifest(d.dir, m); err != nil {
		newWAL.Close()
		return err
	}
	d.appendMu.Lock()
	old := d.wal
	d.wal = newWAL
	d.appendMu.Unlock()
	d.walSeq = newWALSeq
	d.baseSeq = headSeq
	d.dirty.Store(0)
	for _, sh := range ix.shards {
		sh.mu.Lock()
	}
	if d.retention > 0 && head > base {
		// Evict: the rows just flushed (and any older hot rows) are now
		// segment-backed; clear shard storage in place and advance the base.
		for _, sh := range ix.shards {
			sh.docs = nil
			sh.events = nil
			sh.cols = nil
			p := make(map[string]map[string][]int32, len(indexedFields))
			for _, f := range indexedFields {
				p[f] = make(map[string][]int32)
			}
			sh.postings = p
			if sh.rollup != nil {
				*sh.rollup = *newShardRollup(sh.rollup.base)
			}
		}
		ix.base.Store(head)
	}
	d.publishSegsLocked(ix, newSegs)
	for i := len(ix.shards) - 1; i >= 0; i-- {
		ix.shards[i].mu.Unlock()
	}
	d.lastSnap.Store(time.Now().UnixNano())
	if err := old.Close(); err != nil {
		return err
	}
	durable.CleanOrphans(d.dir, m)
	d.tm.snapshots.Inc()
	d.tm.snapshotNS.Observe(float64(time.Since(startT)))
	return nil
}

// close syncs and closes the index's WAL. Taken under the gate so no writer
// is mid-append.
func (d *indexDurable) close() error {
	d.gate.Lock()
	defer d.gate.Unlock()
	return d.wal.Close()
}

// indexDirName maps an index name to its directory: PathEscape keeps "/",
// ".", and ".." from ever reaching the filesystem as path structure.
func indexDirName(name string) string { return "ix-" + url.PathEscape(name) }

// removeIndexDir deletes a dropped index's on-disk state.
func removeIndexDir(dir string) error { return os.RemoveAll(dir) }

// indexDirToName inverts indexDirName.
func indexDirToName(dir string) (string, bool) {
	esc, ok := strings.CutPrefix(dir, "ix-")
	if !ok {
		return "", false
	}
	name, err := url.PathUnescape(esc)
	if err != nil {
		return "", false
	}
	return name, true
}

// newDurableIndex creates a fresh durable index: an empty directory with
// WAL sequence 0 and no manifest (the manifest appears with the first
// snapshot; recovery treats its absence as "replay wal-000000 from zero").
func (s *Store) newDurableIndex(name string) (*Index, error) {
	dir := filepath.Join(s.opts.dataDir, indexDirName(name))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create index dir: %w", err)
	}
	w, err := durable.OpenWAL(filepath.Join(dir, durable.WALName(0)))
	if err != nil {
		return nil, err
	}
	ix := newIndexSized(name, s.opts.shards, s.opts.rollupBase)
	ix.dur = &indexDurable{
		dir: dir, fsync: s.opts.fsync, tm: s.dtm, wal: w,
		retention: s.opts.retention,
		tail:      newReplTail(s.opts.replTailBytes, &s.replArmed),
	}
	empty := []durable.SegmentMeta{}
	ix.dur.segs.Store(&empty)
	return ix, nil
}

// recoverIndex rebuilds one index from its directory: manifest, then the
// leveled segments, then the pending-rewrite overlay, then WAL replay on
// top, with torn tails truncated. The row count afterwards satisfies the
// generalized conservation invariant: rows == Σ segment rows + replayed WAL
// rows.
//
// Two loading styles exist. Hot-style (no retention, dense segment list)
// loads every segment row back into shard memory, reproducing the
// all-in-memory layout. Cold-style (retention configured, a retention floor
// recorded, or a sparse list — any sign rows were dropped) leaves segments
// on disk, starts the memtable at the segment end, and lets the tiered read
// path serve the cold rows.
func (s *Store) recoverIndex(name, dir string) (*Index, error) {
	startT := time.Now()
	m, committed, err := durable.LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	shards := s.opts.shards
	if committed {
		shards = m.Shards
	}
	ix := newIndexSized(name, shards, s.opts.rollupBase)
	d := &indexDurable{
		dir: dir, fsync: s.opts.fsync, tm: s.dtm,
		retention: s.opts.retention,
		tail:      newReplTail(s.opts.replTailBytes, &s.replArmed),
	}
	// Attached before any row loads: the rewrite-overlay apply below reads
	// segment state and the pending map through ix.dur. Single-threaded here,
	// no WAL open yet.
	ix.dur = d
	empty := []durable.SegmentMeta{}
	d.segs.Store(&empty)
	if committed {
		d.walSeq, d.segSeq = m.WALSeq, m.SegmentSeq
		d.baseSeq = m.BaseSeq
		d.replOff.Store(m.ReplOffset)
		ix.retFloor.Store(m.RetentionFloor)
	}
	segs := append([]durable.SegmentMeta(nil), m.Segments...)
	coldStyle := s.opts.retention > 0 || m.RetentionFloor > 0 || !m.Contiguous()
	if coldStyle {
		// Rows stay on disk. Fix up any v1-era meta (row count unknown) by
		// reading its file once, seed the generic-row count from the metas,
		// and start the memtable at the segment end. Every referenced file
		// must exist NOW: a manifest naming a missing segment is corruption
		// recovery reports immediately, not on the first cold query.
		for i := range segs {
			sm := &segs[i]
			if _, serr := os.Stat(filepath.Join(dir, durable.SegmentName(sm.Seq))); serr != nil {
				return nil, fmt.Errorf("store: recover %q: manifest references segment %d: %w", name, sm.Seq, serr)
			}
			if sm.Rows < 0 {
				info, rerr := durable.ReadSegment(filepath.Join(dir, durable.SegmentName(sm.Seq)),
					func(int, *event.Event, []byte) error { return nil })
				if rerr != nil {
					return nil, fmt.Errorf("store: recover %q: %w", name, rerr)
				}
				sm.Rows, sm.EndRow = int64(info.Rows), sm.StartRow+int64(info.Rows)
				sm.MinTime, sm.MaxTime = info.MinTime, info.MaxTime
				sm.Bytes, sm.Generic = info.Bytes, int64(info.Generic)
			}
			ix.generic.Add(sm.Generic)
		}
		base := segsEnd(segs)
		ix.base.Store(base)
		ix.rr.Store(uint64(base))
	} else {
		for i := range segs {
			sm := &segs[i]
			info, rerr := durable.ReadSegment(filepath.Join(dir, durable.SegmentName(sm.Seq)),
				func(gid int, ev *event.Event, doc []byte) error {
					return ix.placeRecoveredRow(int(sm.StartRow)+gid, ev, doc)
				})
			if rerr != nil {
				return nil, fmt.Errorf("store: recover %q: %w", name, rerr)
			}
			if sm.Rows < 0 {
				sm.Rows, sm.EndRow = int64(info.Rows), sm.StartRow+int64(info.Rows)
				sm.MinTime, sm.MaxTime = info.MinTime, info.MaxTime
				sm.Bytes, sm.Generic = info.Bytes, int64(info.Generic)
			}
		}
		ix.rr.Store(uint64(segsEnd(segs)))
	}
	d.segs.Store(&segs)
	ix.coldRows.Store(coldRowCount(segs, ix.base.Load()))
	if len(m.Rewrites) > 0 {
		var rws []walRewrite
		if err := decodeGob(m.Rewrites, &rws); err != nil {
			return nil, fmt.Errorf("store: recover %q: pending rewrites: %w", name, err)
		}
		if err := ix.applyRewrites(rws); err != nil {
			return nil, fmt.Errorf("store: recover %q: %w", name, err)
		}
	}
	walPath := filepath.Join(dir, durable.WALName(d.walSeq))
	replayedRows := 0
	stats, err := durable.ReplayWAL(walPath, func(t durable.RecordType, payload []byte) error {
		n, err := ix.applyWALRecord(t, payload)
		replayedRows += n
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("store: recover %q: %w", name, err)
	}
	if stats.Torn {
		s.dtm.tornTails.Inc()
	}
	// Replayed records are un-snapshotted state: seed the dirty counter so
	// the next snapshot knows the live WAL still holds them (otherwise a
	// snapshot right after recovery would no-op and the WAL would grow
	// forever across restarts).
	d.dirty.Store(int64(stats.Records))
	// The head sequence is re-derived, not stored: the segments end at
	// BaseSeq and the live WAL carries exactly stats.Records records past it.
	// On a follower, the applied primary sequence is the head plus the
	// bootstrap offset — which is exactly the replication resume point, so a
	// cleanly restarted follower asks for frames from where it left off
	// instead of re-requesting the whole stream.
	d.recSeq.Store(d.baseSeq + int64(stats.Records))
	ix.replSeq.Store(d.replOff.Load() + d.recSeq.Load())
	s.dtm.replayedB.Add(uint64(stats.Records))
	s.dtm.replayedE.Add(uint64(replayedRows))
	// Orphan cleanup runs against the loaded manifest — the committed segment
	// list — never a reconstruction, so a multi-segment layout can never have
	// live files mistaken for orphans. (A compaction output claimed but not
	// committed before a crash is exactly what this removes.)
	durable.CleanOrphans(dir, m)
	w, err := durable.OpenWAL(walPath)
	if err != nil {
		return nil, err
	}
	d.wal = w
	s.dtm.recoveryNS.Observe(float64(time.Since(startT)))
	return ix, nil
}

// placeRecoveredRow inserts one segment row during hot-style recovery.
// Segment rows arrive in ascending contiguous gid order, so each lands
// exactly at its shard's append position — verified, since placement
// integrity is what keeps gid arithmetic (gid = local*S + shard, base 0)
// valid for the WAL replay that follows.
func (ix *Index) placeRecoveredRow(gid int, ev *event.Event, docBytes []byte) error {
	S := len(ix.shards)
	sh := ix.shards[gid%S]
	if gid/S != len(sh.docs) {
		return fmt.Errorf("%w: row gid %d out of order", durable.ErrCorruptSegment, gid)
	}
	if ev != nil {
		sh.addEventLocked(ev)
		return nil
	}
	var doc Document
	if err := decodeGob(docBytes, &doc); err != nil {
		return fmt.Errorf("%w: generic row gid %d: %v", durable.ErrCorruptSegment, gid, err)
	}
	// Generic rows void the typed-schema guarantee the cache fingerprint's
	// integer range folding relies on, exactly as a live addBulkAt would.
	ix.generic.Add(1)
	sh.addLocked(doc)
	return nil
}

// applyWALRecord replays one journal record, returning how many rows it
// added (zero for rewrites).
func (ix *Index) applyWALRecord(t durable.RecordType, payload []byte) (int, error) {
	switch t {
	case durable.RecordEvents:
		events, err := event.DecodeBatch(payload, nil)
		if err != nil {
			return 0, fmt.Errorf("store: replay events record: %w", err)
		}
		start := int(ix.rr.Add(uint64(len(events))) - uint64(len(events)))
		ix.addEventsAt(start, events)
		return len(events), nil
	case durable.RecordDocs:
		var docs []Document
		if err := decodeGob(payload, &docs); err != nil {
			return 0, err
		}
		start := int(ix.rr.Add(uint64(len(docs))) - uint64(len(docs)))
		ix.addBulkAt(start, docs)
		return len(docs), nil
	case durable.RecordRewrite:
		var rws []walRewrite
		if err := decodeGob(payload, &rws); err != nil {
			return 0, err
		}
		return 0, ix.applyRewrites(rws)
	default:
		return 0, fmt.Errorf("store: unknown wal record type %d", t)
	}
}

// applyRewrites replays a batch of update-by-query effects onto existing
// rows. Each row's representation is preserved: a typed slot takes the
// document back through the schema (exactly what the live UpdateByQuery
// write-back does), a generic slot is replaced wholesale. Shard locks are
// held per shard, so the same path serves single-threaded recovery and a
// live follower applying replicated rewrites while searches run; the
// invalidations mirror the live UpdateByQuery (in-place rewrites mutate rows
// the rollups already counted and don't route through an epoch-bumping
// mutator).
//
// Tiered layout: a rewrite of a row already folded into a segment (gid below
// the flush start) lands in the pending overlay, so cold reads, compaction,
// and the next manifest commit carry it; a rewrite of a row still in shard
// memory (gid at or above the base) applies in place at memgid = gid - base.
// The two ranges overlap on a non-evicting index — flushed rows stay in
// memory there — and such rows get both, keeping memory and overlay
// consistent.
func (ix *Index) applyRewrites(rws []walRewrite) error {
	ix.epoch.Add(1)
	defer ix.epoch.Add(1)
	S := len(ix.shards)
	head := int(ix.rr.Load())
	base := int(ix.base.Load())
	fs := 0
	if ix.dur != nil {
		fs = int(ix.dur.flushStart(ix))
	}
	byShard := make(map[int][]walRewrite)
	var cold []walRewrite
	for _, r := range rws {
		if r.Gid < 0 || r.Gid >= head {
			return fmt.Errorf("store: rewrite of unknown gid %d", r.Gid)
		}
		if r.Gid < fs {
			cold = append(cold, r)
		}
		if r.Gid >= base {
			mg := r.Gid - base
			byShard[mg%S] = append(byShard[mg%S], walRewrite{Gid: mg, Doc: r.Doc})
		}
	}
	for s, list := range byShard {
		sh := ix.shards[s]
		sh.mu.Lock()
		for _, r := range list {
			local := r.Gid / S
			if sh.docs[local] != nil {
				before := docTerms(sh.docs[local])
				sh.docs[local] = r.Doc
				sh.repostLocked(int32(local), before, docTerms(r.Doc))
			} else {
				before := eventTerms(&sh.events[local])
				sh.events[local] = DocToEvent(r.Doc)
				sh.repostLocked(int32(local), before, eventTerms(&sh.events[local]))
			}
		}
		sh.invalidateColumnsLocked()
		sh.invalidateRollupLocked()
		sh.mu.Unlock()
	}
	if len(cold) > 0 {
		ix.dur.addPending(cold)
	}
	return nil
}

// loadDataDir recovers every index directory under the store's data dir.
func (s *Store) loadDataDir() error {
	entries, err := os.ReadDir(s.opts.dataDir)
	if err != nil {
		return fmt.Errorf("store: read data dir: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name, ok := indexDirToName(e.Name())
		if !ok {
			continue
		}
		ix, err := s.recoverIndex(name, filepath.Join(s.opts.dataDir, e.Name()))
		if err != nil {
			return err
		}
		s.attachReadPath(ix)
		s.indices[name] = ix
		s.registerIndexGauge(name, ix)
	}
	return nil
}

// fsyncLoop flushes every durable index's WAL on the configured interval.
func (s *Store) fsyncLoop() {
	defer s.loopWG.Done()
	t := time.NewTicker(s.opts.fsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
			for _, ix := range s.allIndices() {
				if ix.dur != nil {
					_ = ix.dur.syncWAL()
				}
			}
		}
	}
}

// snapshotLoop periodically snapshots every durable index that journaled
// anything since its last snapshot, then runs one maintenance pass
// (compaction + retention) over the resulting segment layout.
func (s *Store) snapshotLoop() {
	defer s.loopWG.Done()
	t := time.NewTicker(s.opts.snapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
			_ = s.Snapshot()
			_ = s.maintain()
		}
	}
}

// Snapshot writes a segment snapshot for every durable index with journaled
// writes since its last snapshot, truncating their WALs. On an in-memory
// store it is a no-op. The first error is returned; remaining indices are
// still attempted.
func (s *Store) Snapshot() error {
	var first error
	for _, ix := range s.allIndices() {
		if ix.dur == nil {
			continue
		}
		if err := ix.dur.snapshot(ix, false); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close stops the background fsync/snapshot loops and syncs and closes
// every WAL. The store must not be used after Close. In-memory stores
// close trivially.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	if s.stopCh != nil {
		close(s.stopCh)
	}
	s.loopWG.Wait()
	var first error
	for _, ix := range s.allIndices() {
		if ix.dur == nil {
			continue
		}
		if err := ix.dur.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// allIndices snapshots the index set under the store lock.
func (s *Store) allIndices() []*Index {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Index, 0, len(s.indices))
	for _, ix := range s.indices {
		out = append(out, ix)
	}
	return out
}

// segmentCount reports the total committed segments across durable indices
// (the dio_store_segments gauge).
func (s *Store) segmentCount() float64 {
	n := 0
	for _, ix := range s.allIndices() {
		if ix.dur != nil {
			n += len(*ix.dur.segs.Load())
		}
	}
	return float64(n)
}
