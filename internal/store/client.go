package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Client is the HTTP counterpart of *Store: the tracer uses it to ship
// events to a backend running on a separate server, keeping analysis load
// off the traced machine (§II-F). It implements Backend.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient creates a client for the server at base (e.g.
// "http://127.0.0.1:9200").
func NewClient(base string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		hc:   &http.Client{Timeout: 30 * time.Second},
	}
}

// Bulk ships docs to the named index using the NDJSON bulk API.
func (c *Client) Bulk(index string, docs []Document) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, d := range docs {
		buf.WriteString("{\"index\":{}}\n")
		if err := enc.Encode(d); err != nil {
			return fmt.Errorf("encode bulk doc: %w", err)
		}
	}
	var out map[string]int
	return c.do(http.MethodPost, "/"+url.PathEscape(index)+"/_bulk", buf.Bytes(), &out)
}

// Search runs req against the named index.
func (c *Client) Search(index string, req SearchRequest) (SearchResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return SearchResponse{}, fmt.Errorf("encode search: %w", err)
	}
	var resp SearchResponse
	err = c.do(http.MethodPost, "/"+url.PathEscape(index)+"/_search", body, &resp)
	return resp, err
}

// Count counts documents matching q.
func (c *Client) Count(index string, q Query) (int, error) {
	body, err := json.Marshal(q)
	if err != nil {
		return 0, fmt.Errorf("encode query: %w", err)
	}
	var out struct {
		Count int `json:"count"`
	}
	err = c.do(http.MethodPost, "/"+url.PathEscape(index)+"/_count", body, &out)
	return out.Count, err
}

// Correlate triggers the server-side file-path correlation algorithm.
func (c *Client) Correlate(index, session string) (CorrelationResult, error) {
	path := "/" + url.PathEscape(index) + "/_correlate"
	if session != "" {
		path += "?session=" + url.QueryEscape(session)
	}
	var res CorrelationResult
	err := c.do(http.MethodPost, path, nil, &res)
	return res, err
}

// Indices lists index names.
func (c *Client) Indices() ([]string, error) {
	var out []string
	err := c.do(http.MethodGet, "/_cat/indices", nil, &out)
	return out, err
}

func (c *Client) do(method, path string, body []byte, out any) error {
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rdr)
	if err != nil {
		return fmt.Errorf("new request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("%s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("%s %s: status %d: %s", method, path, resp.StatusCode, e.Error)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("decode response: %w", err)
	}
	return nil
}
