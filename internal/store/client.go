package store

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dsrhaslab/dio-go/internal/event"
)

// HTTPError is a non-2xx response from the backend server. It classifies
// itself for the resilience layer: 429 (throttled) and 5xx (server-side)
// responses are temporary and worth retrying, while 4xx client errors are
// permanent. A Retry-After header is surfaced as a backoff hint.
type HTTPError struct {
	Method  string
	Path    string
	Status  int
	Message string
	// Reason is the server's machine-readable error code, when the response
	// body carried one (e.g. "update_beyond_retention" alongside a 409);
	// Unwrap maps known reasons back to their sentinel errors.
	Reason     string
	RetryAfter time.Duration
}

// Error implements error.
func (e *HTTPError) Error() string {
	return fmt.Sprintf("%s %s: status %d: %s", e.Method, e.Path, e.Status, e.Message)
}

// Temporary classifies the status for retry purposes (the structural
// interface the resilience package looks for).
func (e *HTTPError) Temporary() bool {
	return e.Status == http.StatusTooManyRequests ||
		(e.Status >= 500 && e.Status != http.StatusNotImplemented)
}

// RetryAfterHint returns the server-provided backoff, if any.
func (e *HTTPError) RetryAfterHint() time.Duration { return e.RetryAfter }

// Unwrap maps well-known statuses and reason codes back to their sentinel
// errors so remote callers can errors.Is against the same values local
// callers see: 410 Gone is the server-side mapping of ErrCursorExpired, and
// reason "update_beyond_retention" is the 409 a retention-evicting index
// returns for update-by-query and correlation.
func (e *HTTPError) Unwrap() error {
	if e.Status == http.StatusGone {
		return ErrCursorExpired
	}
	if e.Reason == ReasonUpdateBeyondRetention {
		return ErrUpdateBeyondRetention
	}
	return nil
}

// maxErrorBody caps how much of an error response is read: enough for any
// real error message, bounded against a misbehaving server.
const maxErrorBody = 8 * 1024

// Client is the HTTP counterpart of *Store: the tracer uses it to ship
// events to a backend running on a separate server, keeping analysis load
// off the traced machine (§II-F). It implements Backend; every canonical
// method takes a context first, so the retrying shipper can enforce
// per-attempt deadlines directly.
type Client struct {
	base string
	hc   *http.Client
	// prefix is prepended to every API path ("" for the legacy unversioned
	// routes, "/v1" when the client opts into the versioned surface).
	prefix string
	// reqTimeout bounds each request via context when the caller supplies
	// none; distinct from the transport-level safety-net timeout.
	reqTimeout time.Duration
	// binaryDisabled latches after the server rejects the binary event frame
	// with 415, so every later BulkEvents goes straight to the NDJSON
	// fallback without re-probing (see DESIGN.md §10).
	binaryDisabled atomic.Bool
}

// bulkBufPool recycles request-body buffers across Bulk and BulkEvents
// calls: once a buffer has grown to the working batch size, encoding a batch
// allocates nothing. bulkBufNews counts pool misses so tests can assert
// steady-state reuse.
var (
	bulkBufPool = sync.Pool{New: func() any {
		bulkBufNews.Add(1)
		return bytes.NewBuffer(make([]byte, 0, 16*1024))
	}}
	bulkBufNews atomic.Uint64
	// frameBufPool recycles binary frame buffers for BulkEvents.
	frameBufPool = sync.Pool{New: func() any {
		b := make([]byte, 0, 16*1024)
		return &b
	}}
)

// pooledFrameBody is the request body of a binary bulk: it owns the pooled
// frame buffer and recycles it in Close. http.Client.Do can return while the
// transport's write goroutine is still reading the body — exactly the
// error-response paths, where the server replies before consuming it — so
// recycling right after Do would let a concurrent BulkEvents encode over
// bytes an aborted write is still reading. The transport guarantees it
// closes the request body once it is done with it (including on errors),
// which makes Close the only race-free recycle point.
type pooledFrameBody struct {
	r    *bytes.Reader
	bp   *[]byte
	once sync.Once
}

func (b *pooledFrameBody) Read(p []byte) (int, error) { return b.r.Read(p) }

func (b *pooledFrameBody) Close() error {
	b.once.Do(func() {
		frameBufPool.Put(b.bp)
		b.bp = nil
	})
	return nil
}

// ClientOption customizes a Client at construction time.
type ClientOption func(*Client)

// WithAPIPrefix routes every request under the given path prefix.
// WithAPIPrefix("/v1") selects the versioned REST surface; the default is
// the legacy unversioned routes, which every server version understands.
func WithAPIPrefix(prefix string) ClientOption {
	return func(c *Client) {
		c.prefix = strings.TrimRight(prefix, "/")
	}
}

// NewClient creates a client for the server at base (e.g.
// "http://127.0.0.1:9200") with connection-reuse-friendly transport limits
// and a 10s default per-request timeout.
func NewClient(base string, opts ...ClientOption) *Client {
	tr := &http.Transport{
		MaxIdleConns:        32,
		MaxIdleConnsPerHost: 32,
		MaxConnsPerHost:     64,
		IdleConnTimeout:     90 * time.Second,
	}
	c := &Client{
		base: strings.TrimRight(base, "/"),
		hc: &http.Client{
			Transport: tr,
			// Transport-level safety net; per-request deadlines come from
			// contexts and are usually much tighter.
			Timeout: 60 * time.Second,
		},
		reqTimeout: 10 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// SetRequestTimeout overrides the default per-request deadline (0 disables
// the client-imposed deadline; callers may still pass their own contexts).
func (c *Client) SetRequestTimeout(d time.Duration) { c.reqTimeout = d }

// BulkContext is a deprecated alias for Bulk.
//
// Deprecated: use Bulk, which is context-first.
func (c *Client) BulkContext(ctx context.Context, index string, docs []Document) error {
	return c.Bulk(ctx, index, docs)
}

// Bulk ships docs to the named index using the NDJSON bulk API. The NDJSON
// body is built in a pooled buffer and streamed from it, so repeated bulks
// reuse one allocation.
func (c *Client) Bulk(ctx context.Context, index string, docs []Document) error {
	buf := bulkBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bulkBufPool.Put(buf)
	enc := json.NewEncoder(buf)
	for _, d := range docs {
		buf.WriteString("{\"index\":{}}\n")
		if err := enc.Encode(d); err != nil {
			return fmt.Errorf("encode bulk doc: %w", err)
		}
	}
	var out map[string]int
	return c.doBody(ctx, http.MethodPost, "/"+url.PathEscape(index)+"/_bulk",
		contentTypeJSON, buf.Bytes(), &out)
}

// BulkEventsContext is a deprecated alias for BulkEvents.
//
// Deprecated: use BulkEvents, which is context-first.
func (c *Client) BulkEventsContext(ctx context.Context, index string, events []event.Event) error {
	return c.BulkEvents(ctx, index, events)
}

// BulkEvents ships typed events using the binary frame, falling back to the
// NDJSON document path when the server does not speak it.
//
// A server that rejects the binary frame is retried as NDJSON in the same
// call, and a successful downgrade latches, so callers (and the resilience
// ladder above them) never observe a spurious permanent failure from version
// skew. Three rejection shapes exist in the wild: 415 from a server new
// enough to negotiate, an arbitrary 4xx (typically 400 "bad document") from
// a pre-negotiation server whose NDJSON scanner split the frame at whatever
// 0x0A bytes the binary happened to contain, and a 200 {"items":0} ack from
// the same scanner when the frame happened to contain none.
func (c *Client) BulkEvents(ctx context.Context, index string, events []event.Event) error {
	if len(events) == 0 {
		return nil
	}
	if c.binaryDisabled.Load() {
		return c.bulkEventsNDJSON(ctx, index, events)
	}
	bp := frameBufPool.Get().(*[]byte)
	frame := event.EncodeBatch((*bp)[:0], events)
	*bp = frame[:0] // keep the (possibly grown) backing array with the pool entry
	body := &pooledFrameBody{r: bytes.NewReader(frame), bp: bp}
	var out map[string]int
	err := c.doReader(ctx, http.MethodPost, "/"+url.PathEscape(index)+"/_bulk",
		event.ContentTypeBinaryV1, body, int64(len(frame)), &out)
	var he *HTTPError
	if errors.As(err, &he) && he.Status/100 == 4 && he.Status != http.StatusTooManyRequests {
		// Any non-retryable 4xx on a binary frame is indistinguishable from
		// "server does not speak binary": resend as NDJSON before letting
		// the shipper classify the failure permanent and drop the batch.
		ndErr := c.bulkEventsNDJSON(ctx, index, events)
		if ndErr == nil || he.Status == http.StatusUnsupportedMediaType {
			// The NDJSON path delivered (or the server explicitly refused
			// the media type): latch so later batches skip the binary probe.
			c.binaryDisabled.Store(true)
		}
		// When NDJSON also failed, surface its error: the problem is not
		// the frame format, and the NDJSON error carries the right retry
		// classification for the resilience layer.
		return ndErr
	}
	if err == nil && out["items"] == 0 {
		// A server predating the binary protocol does not answer 415: its
		// NDJSON scanner sees the frame as one action line with no
		// documents and acks zero items. Treat the empty ack as "does not
		// speak binary" and resend, or the batch would be silently lost.
		c.binaryDisabled.Store(true)
		return c.bulkEventsNDJSON(ctx, index, events)
	}
	return err
}

// bulkEventsNDJSON is the compatibility path: events degrade to documents
// and ship through the NDJSON bulk API.
func (c *Client) bulkEventsNDJSON(ctx context.Context, index string, events []event.Event) error {
	docs := make([]Document, len(events))
	for i := range events {
		docs[i] = EventToDoc(&events[i])
	}
	return c.Bulk(ctx, index, docs)
}

// BinaryDisabled reports whether the client has latched onto the NDJSON
// fallback after a 415 (exposed for tests and operational introspection).
func (c *Client) BinaryDisabled() bool { return c.binaryDisabled.Load() }

// Search runs req against the named index.
func (c *Client) Search(ctx context.Context, index string, req SearchRequest) (SearchResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return SearchResponse{}, fmt.Errorf("encode search: %w", err)
	}
	var resp SearchResponse
	err = c.do(ctx, http.MethodPost, "/"+url.PathEscape(index)+"/_search", body, &resp)
	return resp, err
}

// SearchEvents runs req against the named index and decodes the hits into
// typed events client-side, so consumers share the Store's typed surface.
func (c *Client) SearchEvents(ctx context.Context, index string, req SearchRequest) (EventsResult, error) {
	resp, err := c.Search(ctx, index, req)
	if err != nil {
		return EventsResult{}, err
	}
	hits := make([]event.Event, len(resp.Hits))
	for i, d := range resp.Hits {
		hits[i] = DocToEvent(d)
	}
	return EventsResult{Total: resp.Total, Hits: hits, Aggs: resp.Aggs, NextAfter: resp.NextAfter}, nil
}

// Count counts documents matching q.
func (c *Client) Count(ctx context.Context, index string, q Query) (int, error) {
	body, err := json.Marshal(q)
	if err != nil {
		return 0, fmt.Errorf("encode query: %w", err)
	}
	var out struct {
		Count int `json:"count"`
	}
	err = c.do(ctx, http.MethodPost, "/"+url.PathEscape(index)+"/_count", body, &out)
	return out.Count, err
}

// Correlate triggers the server-side file-path correlation algorithm.
func (c *Client) Correlate(ctx context.Context, index, session string) (CorrelationResult, error) {
	path := "/" + url.PathEscape(index) + "/_correlate"
	if session != "" {
		path += "?session=" + url.QueryEscape(session)
	}
	var res CorrelationResult
	err := c.do(ctx, http.MethodPost, path, nil, &res)
	return res, err
}

// Scatter runs one partition's share of a cluster search (POST _scatter):
// mergeable candidates and combined aggregation partials, which the
// coordinator reduces with the same merge functions the node used across its
// own shards.
func (c *Client) Scatter(ctx context.Context, index string, sreq ScatterRequest) (ScatterResponse, error) {
	body, err := json.Marshal(sreq)
	if err != nil {
		return ScatterResponse{}, fmt.Errorf("encode scatter: %w", err)
	}
	var resp ScatterResponse
	err = c.do(ctx, http.MethodPost, "/"+url.PathEscape(index)+"/_scatter", body, &resp)
	return resp, err
}

// BulkFrame posts an already-encoded binary event frame verbatim — the
// coordinator's no-re-encode forward path for a single-partition topology.
// The caller owns protocol negotiation: a server that does not speak the
// binary frame surfaces as the usual 4xx, with no NDJSON fallback here.
func (c *Client) BulkFrame(ctx context.Context, index string, frame []byte) error {
	var out map[string]int
	return c.doBody(ctx, http.MethodPost, "/"+url.PathEscape(index)+"/_bulk",
		event.ContentTypeBinaryV1, frame, &out)
}

// Stats fetches the named index's doc/shard/row counts (GET _stats).
func (c *Client) Stats(ctx context.Context, index string) (IndexStats, error) {
	var st IndexStats
	err := c.do(ctx, http.MethodGet, "/"+url.PathEscape(index)+"/_stats", nil, &st)
	return st, err
}

// DeleteIndex drops the named index.
func (c *Client) DeleteIndex(ctx context.Context, index string) error {
	return c.do(ctx, http.MethodDelete, "/"+url.PathEscape(index), nil, nil)
}

// ListIndices lists index names.
func (c *Client) ListIndices(ctx context.Context) ([]string, error) {
	var out []string
	err := c.do(ctx, http.MethodGet, "/_cat/indices", nil, &out)
	return out, err
}

// Indices lists index names.
//
// Deprecated: use ListIndices, which is context-first.
func (c *Client) Indices() ([]string, error) {
	return c.ListIndices(context.Background())
}

// Health probes the server's GET /_health endpoint; nil means the backend
// is reachable and serving.
func (c *Client) Health() error {
	return c.do(context.Background(), http.MethodGet, "/_health", nil, nil)
}

// HealthStatus fetches the server's full health report: role, per-index
// durability freshness, and replication lag. The failover client dispatches
// on Role to find the live primary.
func (c *Client) HealthStatus(ctx context.Context) (HealthStatus, error) {
	var h HealthStatus
	err := c.do(ctx, http.MethodGet, "/_health", nil, &h)
	return h, err
}

// ReplStatus fetches the node's replication position (role plus per-index
// sequences); the shipper resyncs from it after a mismatch or reconnect.
func (c *Client) ReplStatus(ctx context.Context) (ReplState, error) {
	var st ReplState
	err := c.do(ctx, http.MethodGet, "/_repl/status", nil, &st)
	return st, err
}

// ReplApply pushes consecutive replication frames starting at sequence from
// to a follower and returns the follower's new applied sequence. A sequence
// mismatch surfaces as a 409 *HTTPError whose body carried the follower's
// applied position; callers resync via ReplStatus rather than retrying.
func (c *Client) ReplApply(ctx context.Context, index string, from int64, frames []ReplFrame) (int64, error) {
	body, err := json.Marshal(replApplyRequest{Index: index, From: from, Frames: frames})
	if err != nil {
		return 0, fmt.Errorf("encode repl apply: %w", err)
	}
	var out struct {
		Applied int64 `json:"applied"`
	}
	err = c.do(ctx, http.MethodPost, "/_repl/apply", body, &out)
	return out.Applied, err
}

// ReplBootstrap ships a full-state snapshot of one index, aligned to primary
// sequence snap.Seq, replacing whatever the follower held.
func (c *Client) ReplBootstrap(ctx context.Context, index string, snap ReplSnapshot) error {
	body, err := json.Marshal(replBootstrapRequest{Index: index, ReplSnapshot: snap})
	if err != nil {
		return fmt.Errorf("encode repl bootstrap: %w", err)
	}
	return c.do(ctx, http.MethodPost, "/_repl/bootstrap", body, nil)
}

// Promote asks the node to become primary (POST /_repl/promote): manual
// failover, or the failover client acting on primary loss.
func (c *Client) Promote(ctx context.Context) error {
	return c.do(ctx, http.MethodPost, "/_repl/promote", nil, nil)
}

// Base returns the server URL this client targets (failover diagnostics).
func (c *Client) Base() string { return c.base }

// DoJSON issues one JSON-in/JSON-out request through the client's wire
// plumbing (API prefix, per-request deadline, HTTPError mapping) against
// an arbitrary path — the hook extension packages use to speak routes the
// core client does not know (the diagnosis endpoints, for one) without
// re-implementing transport concerns. A nil body sends no payload; a nil
// out discards the response.
func (c *Client) DoJSON(ctx context.Context, method, path string, body, out any) error {
	var raw []byte
	if body != nil {
		var err error
		if raw, err = json.Marshal(body); err != nil {
			return fmt.Errorf("encode request: %w", err)
		}
	}
	return c.do(ctx, method, path, raw, out)
}

const contentTypeJSON = "application/json"

func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	return c.doBody(ctx, method, path, contentTypeJSON, body, out)
}

// doBody issues one request with an explicit content type, streaming body
// without copying it. The returned error is an *HTTPError for non-2xx
// responses, so callers can dispatch on status (content negotiation, retry
// classification).
func (c *Client) doBody(ctx context.Context, method, path, contentType string, body []byte, out any) error {
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	return c.doReader(ctx, method, path, contentType, rdr, int64(len(body)), out)
}

// doReader is doBody over an arbitrary reader of known size. A body that
// implements io.Closer is adopted as the request body and closed by the
// transport when it has finished reading it (the hook pooledFrameBody uses
// to recycle its buffer safely); such bodies are not replayable, so the
// transport cannot transparently retry on a stale connection — the
// resilience shipper above handles those retries.
func (c *Client) doReader(ctx context.Context, method, path, contentType string, body io.Reader, size int64, out any) error {
	if _, hasDeadline := ctx.Deadline(); !hasDeadline && c.reqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.reqTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+c.prefix+path, body)
	if err != nil {
		if cl, ok := body.(io.Closer); ok {
			cl.Close()
		}
		return fmt.Errorf("new request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", contentType)
		if req.ContentLength == 0 && size > 0 {
			// NewRequest only derives the length from the stdlib reader
			// types; custom bodies would fall back to chunked encoding.
			req.ContentLength = size
		}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("%s %s: %w", method, path, err)
	}
	// Fully drain the body on every path so the transport can reuse the
	// connection instead of tearing it down.
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error  string `json:"error"`
			Reason string `json:"reason"`
		}
		_ = json.NewDecoder(io.LimitReader(resp.Body, maxErrorBody)).Decode(&e)
		return &HTTPError{
			Method:     method,
			Path:       path,
			Status:     resp.StatusCode,
			Message:    e.Error,
			Reason:     e.Reason,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("decode response: %w", err)
	}
	return nil
}

// parseRetryAfter reads a Retry-After header in delay-seconds form (the
// HTTP-date form is ignored; a backoff hint is best-effort).
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
