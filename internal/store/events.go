package store

import (
	"github.com/dsrhaslab/dio-go/internal/event"
)

// Document field names for trace events. Kept as constants so queries,
// correlation, and visualizations agree on the schema.
const (
	FieldSession    = "session"
	FieldSyscall    = "syscall"
	FieldClass      = "class"
	FieldRetVal     = "ret_val"
	FieldFD         = "fd"
	FieldArgPath    = "arg_path"
	FieldArgPath2   = "arg_path2"
	FieldCount      = "count"
	FieldArgOffset  = "arg_offset"
	FieldWhence     = "whence"
	FieldFlags      = "flags"
	FieldMode       = "mode"
	FieldAttrName   = "xattr_name"
	FieldPID        = "pid"
	FieldTID        = "tid"
	FieldProcName   = "proc_name"
	FieldThreadName = "thread_name"
	FieldTimeEnter  = "time_enter_ns"
	FieldTimeExit   = "time_exit_ns"
	FieldDuration   = "duration_ns"
	FieldFileTag    = "file_tag"
	FieldDevNo      = "dev_no"
	FieldInodeNo    = "inode_no"
	FieldTagTS      = "tag_timestamp"
	FieldFileType   = "file_type"
	FieldOffset     = "offset"
	FieldHasOffset  = "has_offset"
	FieldKernelPath = "kernel_path"
	FieldFilePath   = "file_path"
)

// EventToDoc flattens a trace event into an indexable document.
func EventToDoc(e *event.Event) Document {
	d := Document{
		FieldSession:    e.Session,
		FieldSyscall:    e.Syscall,
		FieldClass:      e.Class,
		FieldRetVal:     e.RetVal,
		FieldPID:        int64(e.PID),
		FieldTID:        int64(e.TID),
		FieldProcName:   e.ProcName,
		FieldThreadName: e.ThreadName,
		FieldTimeEnter:  e.TimeEnterNS,
		FieldTimeExit:   e.TimeExitNS,
		FieldDuration:   e.DurationNS(),
		FieldHasOffset:  e.HasOffset,
	}
	if e.FD != 0 {
		d[FieldFD] = int64(e.FD)
	}
	if e.ArgPath != "" {
		d[FieldArgPath] = e.ArgPath
	}
	if e.ArgPath2 != "" {
		d[FieldArgPath2] = e.ArgPath2
	}
	if e.Count != 0 {
		d[FieldCount] = int64(e.Count)
	}
	if e.ArgOff != 0 {
		d[FieldArgOffset] = e.ArgOff
	}
	if e.Whence != 0 {
		d[FieldWhence] = int64(e.Whence)
	}
	if e.Flags != 0 {
		d[FieldFlags] = int64(e.Flags)
	}
	if e.Mode != 0 {
		d[FieldMode] = int64(e.Mode)
	}
	if e.AttrName != "" {
		d[FieldAttrName] = e.AttrName
	}
	if !e.FileTag.Zero() {
		d[FieldFileTag] = e.FileTag.String()
		d[FieldDevNo] = int64(e.FileTag.Dev)
		d[FieldInodeNo] = int64(e.FileTag.Ino)
		d[FieldTagTS] = e.FileTag.BirthNS
	}
	if e.FileType != "" {
		d[FieldFileType] = e.FileType
	}
	if e.HasOffset {
		d[FieldOffset] = e.Offset
	}
	if e.KernelPath != "" {
		d[FieldKernelPath] = e.KernelPath
	}
	if e.FilePath != "" {
		d[FieldFilePath] = e.FilePath
	}
	return d
}

// DocToEvent reconstructs a trace event from a document (best-effort: the
// schema above is lossless for all fields the tracer emits).
func DocToEvent(d Document) event.Event {
	e := event.Event{
		Session:    str(d[FieldSession]),
		Syscall:    str(d[FieldSyscall]),
		Class:      str(d[FieldClass]),
		RetVal:     i64(d[FieldRetVal]),
		FD:         int(i64(d[FieldFD])),
		ArgPath:    str(d[FieldArgPath]),
		ArgPath2:   str(d[FieldArgPath2]),
		Count:      int(i64(d[FieldCount])),
		ArgOff:     i64(d[FieldArgOffset]),
		Whence:     int(i64(d[FieldWhence])),
		Flags:      int(i64(d[FieldFlags])),
		Mode:       uint32(i64(d[FieldMode])),
		AttrName:   str(d[FieldAttrName]),
		PID:        int(i64(d[FieldPID])),
		TID:        int(i64(d[FieldTID])),
		ProcName:   str(d[FieldProcName]),
		ThreadName: str(d[FieldThreadName]),

		TimeEnterNS: i64(d[FieldTimeEnter]),
		TimeExitNS:  i64(d[FieldTimeExit]),
		FileType:    str(d[FieldFileType]),
		KernelPath:  str(d[FieldKernelPath]),
		FilePath:    str(d[FieldFilePath]),
	}
	if tag := str(d[FieldFileTag]); tag != "" {
		if ft, err := event.ParseFileTag(tag); err == nil {
			e.FileTag = ft
		}
	}
	if b, ok := d[FieldHasOffset].(bool); ok && b {
		e.HasOffset = true
		e.Offset = i64(d[FieldOffset])
	}
	return e
}

func str(v any) string {
	s, _ := v.(string)
	return s
}

func i64(v any) int64 {
	f, ok := numeric(v)
	if !ok {
		return 0
	}
	return int64(f)
}
