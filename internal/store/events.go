package store

import (
	"context"

	"github.com/dsrhaslab/dio-go/internal/event"
)

// Document field names for trace events, aliased from the event package —
// the schema's single source of truth — so queries, correlation, and
// visualizations keep their store.Field* spelling while the typed accessors
// (event.Event.Field/Visit) and this document view cannot drift apart.
const (
	FieldSession    = event.FieldSession
	FieldSyscall    = event.FieldSyscall
	FieldClass      = event.FieldClass
	FieldRetVal     = event.FieldRetVal
	FieldFD         = event.FieldFD
	FieldArgPath    = event.FieldArgPath
	FieldArgPath2   = event.FieldArgPath2
	FieldCount      = event.FieldCount
	FieldArgOffset  = event.FieldArgOffset
	FieldWhence     = event.FieldWhence
	FieldFlags      = event.FieldFlags
	FieldMode       = event.FieldMode
	FieldAttrName   = event.FieldAttrName
	FieldPID        = event.FieldPID
	FieldTID        = event.FieldTID
	FieldProcName   = event.FieldProcName
	FieldThreadName = event.FieldThreadName
	FieldTimeEnter  = event.FieldTimeEnter
	FieldTimeExit   = event.FieldTimeExit
	FieldDuration   = event.FieldDuration
	FieldFileTag    = event.FieldFileTag
	FieldDevNo      = event.FieldDevNo
	FieldInodeNo    = event.FieldInodeNo
	FieldTagTS      = event.FieldTagTS
	FieldFileType   = event.FieldFileType
	FieldOffset     = event.FieldOffset
	FieldHasOffset  = event.FieldHasOffset
	FieldKernelPath = event.FieldKernelPath
	FieldFilePath   = event.FieldFilePath
)

// EventBackend is the optional typed-ingest extension of Backend: both the
// in-process *Store and the binary-protocol *Client implement it. Like Bulk,
// implementations must not retain the events slice.
type EventBackend interface {
	BulkEvents(ctx context.Context, index string, events []event.Event) error
}

// EventSearcher is the optional typed-search extension of Backend.
type EventSearcher interface {
	SearchEvents(ctx context.Context, index string, req SearchRequest) (EventsResult, error)
}

var (
	_ EventBackend  = (*Store)(nil)
	_ EventBackend  = (*Client)(nil)
	_ EventSearcher = (*Store)(nil)
	_ EventSearcher = (*Client)(nil)
)

// ShipEvents ships typed events through b's fast path when it has one and
// degrades to EventToDoc + Bulk otherwise, so the tracer can hand every
// backend the same typed batches. The events slice is not retained.
func ShipEvents(ctx context.Context, b Backend, index string, events []event.Event) error {
	if eb, ok := b.(EventBackend); ok {
		return eb.BulkEvents(ctx, index, events)
	}
	docs := make([]Document, len(events))
	for i := range events {
		docs[i] = EventToDoc(&events[i])
	}
	return b.Bulk(ctx, index, docs)
}

// SearchEvents runs req through b's typed search when it has one; otherwise
// the document hits convert best-effort through the schema. Consumers
// (analysis, visualizations, replay) use this instead of hand-rolling
// DocToEvent loops over SearchResponse hits.
func SearchEvents(ctx context.Context, b Backend, index string, req SearchRequest) (EventsResult, error) {
	if es, ok := b.(EventSearcher); ok {
		return es.SearchEvents(ctx, index, req)
	}
	resp, err := b.Search(ctx, index, req)
	if err != nil {
		return EventsResult{}, err
	}
	hits := make([]event.Event, len(resp.Hits))
	for i, d := range resp.Hits {
		hits[i] = DocToEvent(d)
	}
	return EventsResult{Total: resp.Total, Hits: hits, Aggs: resp.Aggs, NextAfter: resp.NextAfter}, nil
}

// EachEventPage walks every hit of req in pageSize-bounded pages using the
// streaming cursor, calling fn once per page. The request's From/Size/
// SearchAfter are overwritten by the pager; Sort and Query are honored. A
// non-nil error from fn stops the walk and is returned.
func EachEventPage(ctx context.Context, b Backend, index string, req SearchRequest, pageSize int, fn func(EventsResult) error) error {
	if pageSize <= 0 {
		pageSize = 1000
	}
	req.From, req.Size, req.SearchAfter = 0, pageSize, nil
	for {
		page, err := SearchEvents(ctx, b, index, req)
		if err != nil {
			return err
		}
		if err := fn(page); err != nil {
			return err
		}
		if len(page.Hits) < pageSize || page.NextAfter == nil {
			return nil
		}
		req.SearchAfter = page.NextAfter
	}
}

// EventToDoc flattens a trace event into an indexable document.
func EventToDoc(e *event.Event) Document {
	d := Document{
		FieldSession:    e.Session,
		FieldSyscall:    e.Syscall,
		FieldClass:      e.Class,
		FieldRetVal:     e.RetVal,
		FieldPID:        int64(e.PID),
		FieldTID:        int64(e.TID),
		FieldProcName:   e.ProcName,
		FieldThreadName: e.ThreadName,
		FieldTimeEnter:  e.TimeEnterNS,
		FieldTimeExit:   e.TimeExitNS,
		FieldDuration:   e.DurationNS(),
		FieldHasOffset:  e.HasOffset,
	}
	if e.FD != 0 {
		d[FieldFD] = int64(e.FD)
	}
	if e.ArgPath != "" {
		d[FieldArgPath] = e.ArgPath
	}
	if e.ArgPath2 != "" {
		d[FieldArgPath2] = e.ArgPath2
	}
	if e.Count != 0 {
		d[FieldCount] = int64(e.Count)
	}
	if e.ArgOff != 0 {
		d[FieldArgOffset] = e.ArgOff
	}
	if e.Whence != 0 {
		d[FieldWhence] = int64(e.Whence)
	}
	if e.Flags != 0 {
		d[FieldFlags] = int64(e.Flags)
	}
	if e.Mode != 0 {
		d[FieldMode] = int64(e.Mode)
	}
	if e.AttrName != "" {
		d[FieldAttrName] = e.AttrName
	}
	if !e.FileTag.Zero() {
		d[FieldFileTag] = e.FileTag.String()
		d[FieldDevNo] = int64(e.FileTag.Dev)
		d[FieldInodeNo] = int64(e.FileTag.Ino)
		d[FieldTagTS] = e.FileTag.BirthNS
	}
	if e.FileType != "" {
		d[FieldFileType] = e.FileType
	}
	if e.HasOffset {
		d[FieldOffset] = e.Offset
	}
	if e.KernelPath != "" {
		d[FieldKernelPath] = e.KernelPath
	}
	if e.FilePath != "" {
		d[FieldFilePath] = e.FilePath
	}
	return d
}

// DocToEvent reconstructs a trace event from a document (best-effort: the
// schema above is lossless for all fields the tracer emits).
func DocToEvent(d Document) event.Event {
	e := event.Event{
		Session:    str(d[FieldSession]),
		Syscall:    str(d[FieldSyscall]),
		Class:      str(d[FieldClass]),
		RetVal:     i64(d[FieldRetVal]),
		FD:         int(i64(d[FieldFD])),
		ArgPath:    str(d[FieldArgPath]),
		ArgPath2:   str(d[FieldArgPath2]),
		Count:      int(i64(d[FieldCount])),
		ArgOff:     i64(d[FieldArgOffset]),
		Whence:     int(i64(d[FieldWhence])),
		Flags:      int(i64(d[FieldFlags])),
		Mode:       uint32(i64(d[FieldMode])),
		AttrName:   str(d[FieldAttrName]),
		PID:        int(i64(d[FieldPID])),
		TID:        int(i64(d[FieldTID])),
		ProcName:   str(d[FieldProcName]),
		ThreadName: str(d[FieldThreadName]),

		TimeEnterNS: i64(d[FieldTimeEnter]),
		TimeExitNS:  i64(d[FieldTimeExit]),
		FileType:    str(d[FieldFileType]),
		KernelPath:  str(d[FieldKernelPath]),
		FilePath:    str(d[FieldFilePath]),
	}
	if tag := str(d[FieldFileTag]); tag != "" {
		if ft, err := event.ParseFileTag(tag); err == nil {
			e.FileTag = ft
		}
	}
	if b, ok := d[FieldHasOffset].(bool); ok && b {
		e.HasOffset = true
		e.Offset = i64(d[FieldOffset])
	}
	return e
}

func str(v any) string {
	s, _ := v.(string)
	return s
}

func i64(v any) int64 {
	// Integer-typed values convert exactly: nanosecond timestamps exceed
	// 2^53, so a float64 round-trip would corrupt them.
	switch x := v.(type) {
	case int64:
		return x
	case int:
		return int64(x)
	case uint64:
		return int64(x)
	}
	f, ok := numeric(v)
	if !ok {
		return 0
	}
	return int64(f)
}
