package store

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestHealthEndpoint(t *testing.T) {
	st, c := newTestServerClient(t)
	if err := c.Health(); err != nil {
		t.Fatalf("Health: %v", err)
	}
	st.Bulk(context.Background(), "run1", docFixture())
	if err := c.Health(); err != nil {
		t.Fatalf("Health after writes: %v", err)
	}
}

func TestHTTPErrorClassification(t *testing.T) {
	cases := []struct {
		status    int
		temporary bool
	}{
		{http.StatusTooManyRequests, true},
		{http.StatusServiceUnavailable, true},
		{http.StatusBadGateway, true},
		{http.StatusInternalServerError, true},
		{http.StatusNotImplemented, false},
		{http.StatusBadRequest, false},
		{http.StatusNotFound, false},
	}
	for _, tc := range cases {
		e := &HTTPError{Status: tc.status}
		if e.Temporary() != tc.temporary {
			t.Errorf("status %d: Temporary() = %v, want %v", tc.status, e.Temporary(), tc.temporary)
		}
	}
}

func TestClientSurfacesRetryAfter(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"error": "overloaded"})
	}))
	defer srv.Close()
	c := NewClient(srv.URL)
	err := c.Bulk(context.Background(), "ix", docFixture())
	var he *HTTPError
	if !errors.As(err, &he) {
		t.Fatalf("err = %v (%T), want *HTTPError", err, err)
	}
	if !he.Temporary() || he.RetryAfterHint() != 7*time.Second || he.Status != 503 {
		t.Fatalf("HTTPError = %+v", he)
	}
}

func TestClientCapsErrorBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		w.Write(bytes.Repeat([]byte("x"), 1<<20)) // 1 MiB of garbage
	}))
	defer srv.Close()
	c := NewClient(srv.URL)
	err := c.Bulk(context.Background(), "ix", docFixture())
	var he *HTTPError
	if !errors.As(err, &he) {
		t.Fatalf("err = %v, want *HTTPError", err)
	}
	if len(he.Message) > maxErrorBody {
		t.Fatalf("error message length %d exceeds cap", len(he.Message))
	}
	if he.Temporary() {
		t.Fatal("400 classified temporary")
	}
}

func TestClientRequestTimeout(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer srv.Close()
	defer close(block)
	c := NewClient(srv.URL)
	c.SetRequestTimeout(30 * time.Millisecond)
	start := time.Now()
	err := c.Health()
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

func TestChaosHandlerScriptedOutage(t *testing.T) {
	st := New()
	chaos := NewChaosHandler(NewServer(st), 1)
	chaos.SetConfig(ChaosConfig{OutageFrom: 1, OutageTo: 3, RetryAfterSec: 2})
	srv := httptest.NewServer(chaos)
	defer srv.Close()
	c := NewClient(srv.URL)

	if err := c.Bulk(context.Background(), "ix", docFixture()); err != nil {
		t.Fatalf("bulk call 0 (before outage): %v", err)
	}
	for i := 0; i < 2; i++ {
		err := c.Bulk(context.Background(), "ix", docFixture())
		var he *HTTPError
		if !errors.As(err, &he) || he.Status != http.StatusServiceUnavailable {
			t.Fatalf("outage bulk %d = %v, want 503", i, err)
		}
		if he.RetryAfterHint() != 2*time.Second {
			t.Fatalf("outage bulk %d retry-after = %v", i, he.RetryAfterHint())
		}
	}
	if err := c.Bulk(context.Background(), "ix", docFixture()); err != nil {
		t.Fatalf("bulk after outage: %v", err)
	}
	if chaos.Injected() != 2 {
		t.Fatalf("injected = %d, want 2", chaos.Injected())
	}
	// Queries were never chaos targets outside outages.
	if _, err := c.Count(context.Background(), "ix", Query{}); err != nil {
		t.Fatalf("count: %v", err)
	}
}

func TestChaosHandlerControlEndpoint(t *testing.T) {
	st := New()
	chaos := NewChaosHandler(NewServer(st), 1)
	srv := httptest.NewServer(chaos)
	defer srv.Close()

	cfg, _ := json.Marshal(ChaosConfig{Rate: 1, Status: http.StatusTooManyRequests})
	resp, err := http.Post(srv.URL+"/_chaos", "application/json", bytes.NewReader(cfg))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /_chaos = %v (%v)", resp.Status, err)
	}
	resp.Body.Close()

	c := NewClient(srv.URL)
	err = c.Bulk(context.Background(), "ix", docFixture())
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusTooManyRequests {
		t.Fatalf("bulk under rate-1 chaos = %v, want 429", err)
	}
	if !he.Temporary() {
		t.Fatal("429 should classify temporary")
	}

	// Disarm and verify the report endpoint.
	http.Post(srv.URL+"/_chaos", "application/json", bytes.NewReader([]byte("{}")))
	if err := c.Bulk(context.Background(), "ix", docFixture()); err != nil {
		t.Fatalf("bulk after disarm: %v", err)
	}
	get, err := http.Get(srv.URL + "/_chaos")
	if err != nil {
		t.Fatalf("GET /_chaos: %v", err)
	}
	defer get.Body.Close()
	var report struct {
		Injected  uint64 `json:"injected"`
		BulkCalls uint64 `json:"bulk_calls"`
	}
	if err := json.NewDecoder(get.Body).Decode(&report); err != nil {
		t.Fatalf("decode report: %v", err)
	}
	if report.Injected != 1 || report.BulkCalls != 2 {
		t.Fatalf("report = %+v", report)
	}
}
