package store

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"github.com/dsrhaslab/dio-go/internal/event"
)

// cursorFixture builds n typed events with deliberate sort-key collisions:
// four events share each time_enter_ns value and the syscall set is small,
// so every paged sort exercises the gid tie-break, not just the key order.
func cursorFixture(n int) []event.Event {
	syscalls := []string{"read", "write", "openat", "close", "fsync", "lseek"}
	evs := make([]event.Event, n)
	for i := range evs {
		evs[i] = event.Event{
			Session:     fmt.Sprintf("s%d", i%4),
			Syscall:     syscalls[i%len(syscalls)],
			Class:       "io",
			RetVal:      int64(i % 8192),
			FD:          3 + i%5,
			PID:         100,
			TID:         101 + i%3,
			ProcName:    "app",
			ThreadName:  fmt.Sprintf("w%d", i%2),
			TimeEnterNS: 1_000_000_000 + int64(i/4)*1_000,
			TimeExitNS:  1_000_000_000 + int64(i/4)*1_000 + 700,
		}
	}
	return evs
}

func ingestCursorFixture(t *testing.T, st *Store, index string, evs []event.Event) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < len(evs); i += 4096 {
		j := i + 4096
		if j > len(evs) {
			j = len(evs)
		}
		if err := st.BulkEvents(ctx, index, evs[i:j]); err != nil {
			t.Fatalf("ingest [%d:%d): %v", i, j, err)
		}
	}
}

// pageAll walks req through the search_after cursor in pageSize steps and
// returns the concatenated hits.
func pageAll(t *testing.T, st *Store, index string, req SearchRequest, pageSize int) []Document {
	t.Helper()
	ctx := context.Background()
	req.From, req.Size, req.SearchAfter = 0, pageSize, nil
	var out []Document
	for pages := 0; ; pages++ {
		if pages > 1_000 {
			t.Fatal("cursor failed to terminate")
		}
		resp, err := st.Search(ctx, index, req)
		if err != nil {
			t.Fatalf("paged search: %v", err)
		}
		out = append(out, resp.Hits...)
		if len(resp.Hits) < pageSize || resp.NextAfter == nil {
			return out
		}
		req.SearchAfter = resp.NextAfter
	}
}

// TestCursorPagingDifferential is the paging correctness oracle: over a
// 120k-doc index, walking any query with the search_after cursor must
// reproduce the monolithic sorted response byte-for-byte — on the sharded
// typed path, under the legacy serial-scan ablation, and on a store
// recovered from its WAL (where gids are reassigned by replay order, which
// equals ingest order).
func TestCursorPagingDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("120k-doc differential; skipped in -short")
	}
	const n = 120_000
	const pageSize = 4_999
	evs := cursorFixture(n)

	shapes := []SearchRequest{
		{Query: MatchAll(), Sort: []SortField{{Field: FieldTimeEnter, Desc: true}}},
		{Query: Term(FieldSession, "s1"), Sort: []SortField{{Field: FieldSyscall}, {Field: FieldTimeEnter}}},
		{Query: MatchAll()},
		{Query: Term(FieldSyscall, "read")},
	}

	mem, err := Open()
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	ingestCursorFixture(t, mem, "cur", evs)

	dir := t.TempDir()
	dur, err := Open(WithDataDir(dir), WithFsyncPolicy(FsyncOff), WithSnapshotInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	ingestCursorFixture(t, dur, "cur", evs)
	if err := dur.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Open(WithDataDir(dir), WithFsyncPolicy(FsyncOff), WithSnapshotInterval(0))
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer rec.Close()

	ix, ok := mem.GetIndex("cur")
	if !ok {
		t.Fatal("index missing")
	}

	for si, shape := range shapes {
		mono := shape
		mono.Size = n
		want, err := mem.Search(context.Background(), "cur", mono)
		if err != nil {
			t.Fatalf("shape %d monolithic: %v", si, err)
		}
		if want.Total != n {
			// Filtered shapes match a subset; just sanity-check non-empty.
			if want.Total == 0 {
				t.Fatalf("shape %d matched nothing", si)
			}
		}
		// The legacy ablation re-sorts the full matched set on every page, so
		// it pages coarsely (still several pages) to keep the oracle fast.
		modes := map[string]func() []Document{
			"typed": func() []Document { return pageAll(t, mem, "cur", shape, pageSize) },
			"legacy": func() []Document {
				ix.SetLegacyScan(true)
				defer ix.SetLegacyScan(false)
				return pageAll(t, mem, "cur", shape, n/3+7)
			},
			"recovered": func() []Document { return pageAll(t, rec, "cur", shape, pageSize) },
		}
		for name, page := range modes {
			got := page()
			if len(got) != len(want.Hits) {
				t.Errorf("shape %d %s: paged %d hits, monolithic %d", si, name, len(got), len(want.Hits))
				continue
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], want.Hits[i]) {
					a, _ := json.Marshal(got[i])
					b, _ := json.Marshal(want.Hits[i])
					t.Errorf("shape %d %s: first divergence at hit %d:\n got %s\nwant %s", si, name, i, a, b)
					break
				}
			}
		}
	}
}

// TestCursorHTTPPaging drives the cursor over the wire: paging through the
// /v1 client and the legacy unprefixed alias must both reproduce the
// in-process monolithic response, proving NextAfter survives the JSON
// round-trip (gids ride as float64 and re-parse exactly below 2^53).
func TestCursorHTTPPaging(t *testing.T) {
	st := New()
	srv := httptest.NewServer(NewServer(st))
	t.Cleanup(srv.Close)
	evs := cursorFixture(6_000)
	ingestCursorFixture(t, st, "cur", evs)

	shape := SearchRequest{
		Query: Term(FieldSession, "s0"),
		Sort:  []SortField{{Field: FieldTimeEnter, Desc: true}},
	}
	mono := shape
	mono.Size = len(evs)
	want, err := st.Search(context.Background(), "cur", mono)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want.Hits)

	for name, c := range map[string]*Client{
		"v1":     NewClient(srv.URL, WithAPIPrefix("/v1")),
		"legacy": NewClient(srv.URL),
	} {
		req := shape
		req.Size = 700
		var got []Document
		for {
			resp, err := c.Search(context.Background(), "cur", req)
			if err != nil {
				t.Fatalf("%s paged search: %v", name, err)
			}
			got = append(got, resp.Hits...)
			if len(resp.Hits) < req.Size || resp.NextAfter == nil {
				break
			}
			req.SearchAfter = resp.NextAfter
		}
		gotJSON, _ := json.Marshal(got)
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Errorf("%s: paged hits diverge from monolithic (%d vs %d)", name, len(got), len(want.Hits))
		}

		// Typed paging through the same client must agree on count and order.
		var typed int
		err := EachEventPage(context.Background(), c, "cur", shape, 700, func(page EventsResult) error {
			typed += len(page.Hits)
			return nil
		})
		if err != nil {
			t.Fatalf("%s EachEventPage: %v", name, err)
		}
		if typed != len(want.Hits) {
			t.Errorf("%s: typed pager saw %d events, want %d", name, typed, len(want.Hits))
		}
	}
}

// TestCursorBadRequest maps every malformed cursor to HTTP 400 — not a 500,
// not a silent empty page.
func TestCursorBadRequest(t *testing.T) {
	st := New()
	srv := httptest.NewServer(NewServer(st))
	t.Cleanup(srv.Close)
	if err := st.BulkEvents(context.Background(), "cur", cursorFixture(16)); err != nil {
		t.Fatal(err)
	}

	bad := []string{
		`{"size":5,"sort":[{"field":"time_enter_ns"}],"search_after":[12345]}`,        // missing gid element
		`{"size":5,"search_after":[1,2]}`,                                             // no sort: want exactly [gid]
		`{"size":5,"from":3,"search_after":[7]}`,                                      // from + cursor conflict
		`{"size":5,"search_after":["x"]}`,                                             // gid not numeric
		`{"size":5,"search_after":[-1]}`,                                              // gid negative
		`{"size":5,"search_after":[1.5]}`,                                             // gid not integral
		`{"size":5,"sort":[{"field":"time_enter_ns"}],"search_after":[12345,"7"]}`,    // gid as string
		`{"size":5,"sort":[{"field":"time_enter_ns"}],"search_after":[12345,9.1e17]}`, // gid above 2^53
	}
	for _, body := range bad {
		for _, path := range []string{"/cur/_search", "/v1/cur/_search"} {
			resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("POST %s %s: status %d, want 400", path, body, resp.StatusCode)
			}
		}
	}

	// A well-formed cursor on the same routes still answers 200.
	ok := `{"size":5,"sort":[{"field":"time_enter_ns"}],"search_after":[1000000000,3]}`
	resp, err := http.Post(srv.URL+"/cur/_search", "application/json", strings.NewReader(ok))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("valid cursor: status %d, want 200", resp.StatusCode)
	}
}
