package store

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestV1AndLegacyRoutesServeSameStore checks the versioned API surface: a
// client pinned to /v1 and a legacy unprefixed client must observe one
// store — writes through either prefix are readable through the other, for
// every operation the server exposes.
func TestV1AndLegacyRoutesServeSameStore(t *testing.T) {
	st := New()
	srv := httptest.NewServer(NewServer(st))
	t.Cleanup(srv.Close)
	v1 := NewClient(srv.URL, WithAPIPrefix("/v1"))
	legacy := NewClient(srv.URL)
	ctx := context.Background()

	// Write typed events through /v1, generic docs through the legacy paths.
	if err := v1.BulkEvents(ctx, "compat", eventFixture()); err != nil {
		t.Fatalf("v1 bulk events: %v", err)
	}
	if err := legacy.Bulk(ctx, "compat", docFixture()); err != nil {
		t.Fatalf("legacy bulk: %v", err)
	}

	want := len(eventFixture()) + len(docFixture())
	for name, c := range map[string]*Client{"v1": v1, "legacy": legacy} {
		n, err := c.Count(ctx, "compat", MatchAll())
		if err != nil || n != want {
			t.Fatalf("%s count = (%d, %v), want %d", name, n, err, want)
		}
		resp, err := c.Search(ctx, "compat", SearchRequest{Query: MatchAll(), Size: -1})
		if err != nil || resp.Total != want {
			t.Fatalf("%s search total = (%d, %v), want %d", name, resp.Total, err, want)
		}
		evs, err := c.SearchEvents(ctx, "compat", SearchRequest{Query: Term(FieldSyscall, "read"), Size: -1})
		if err != nil || len(evs.Hits) == 0 {
			t.Fatalf("%s typed search = (%d hits, %v)", name, len(evs.Hits), err)
		}
		if _, err := c.Correlate(ctx, "compat", "s1"); err != nil {
			t.Fatalf("%s correlate: %v", name, err)
		}
		names, err := c.Indices()
		if err != nil || len(names) != 1 || names[0] != "compat" {
			t.Fatalf("%s indices = (%v, %v)", name, names, err)
		}
		if err := c.Health(); err != nil {
			t.Fatalf("%s health: %v", name, err)
		}
	}

	// The prefix is literal, not recursive: /v1/v1/... must miss.
	resp, err := http.Get(srv.URL + "/v1/v1/_health")
	if err != nil {
		t.Fatalf("double-prefix probe: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("/v1/v1/_health served OK; the version prefix must not nest")
	}
}
