package store

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"testing"

	"github.com/dsrhaslab/dio-go/internal/durable"
)

// pump drains primary's WAL into follower through the in-process replication
// surface, exactly as the shipper would: range from the follower's applied
// position, apply, repeat until caught up. Fails the test on a bootstrap
// demand unless allowBootstrap.
func pump(t *testing.T, primary, follower *Store, index string, allowBootstrap bool) {
	t.Helper()
	ctx := context.Background()
	var cur ReplCursor
	for {
		applied := follower.ReplStatus().Indices[index]
		frames, head, bootstrap, err := primary.ReplRange(index, applied, &cur, 0, 0)
		if err != nil {
			t.Fatalf("repl range from %d: %v", applied, err)
		}
		if bootstrap {
			if !allowBootstrap {
				t.Fatalf("unexpected bootstrap demand at applied=%d head=%d", applied, head)
			}
			snap, err := primary.ReplBootstrapFrames(index, 0)
			if err != nil {
				t.Fatalf("bootstrap frames: %v", err)
			}
			if err := follower.ReplBootstrap(ctx, index, snap); err != nil {
				t.Fatalf("bootstrap apply: %v", err)
			}
			continue
		}
		if len(frames) == 0 {
			if applied != head {
				t.Fatalf("caught up at %d but head is %d", applied, head)
			}
			return
		}
		if _, err := follower.ReplApply(ctx, index, applied, frames); err != nil {
			t.Fatalf("repl apply at %d: %v", applied, err)
		}
	}
}

// TestReplStreamToFollower is the core replication invariant: a follower fed
// the primary's WAL frames is fingerprint-identical to the primary and to a
// never-crashed control, and its own WAL file is byte-identical to the
// primary's (same records, same order, same encoding).
func TestReplStreamToFollower(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	primary := openDurable(t, pdir)
	defer primary.Close()
	primary.ArmReplication()
	follower := openDurable(t, fdir)
	defer follower.Close()
	follower.SetFollower()

	for r := 0; r < 3; r++ {
		ingestRound(t, primary, r)
	}
	pump(t, primary, follower, crashIndex, false)

	want := fingerprint(t, primary)
	if got := fingerprint(t, follower); got != want {
		t.Fatalf("follower state diverged from primary")
	}
	if got := fingerprint(t, controlStore(t, 3)); got != want {
		t.Fatalf("replicated state diverged from in-memory control")
	}
	pw, err := os.ReadFile(walFile(pdir, 0))
	if err != nil {
		t.Fatalf("read primary wal: %v", err)
	}
	fw, err := os.ReadFile(walFile(fdir, 0))
	if err != nil {
		t.Fatalf("read follower wal: %v", err)
	}
	if string(pw) != string(fw) {
		t.Fatalf("follower WAL (%d bytes) != primary WAL (%d bytes)", len(fw), len(pw))
	}

	// The follower's applied position must survive its own restart: recovery
	// re-derives the sequence from the manifest offset plus replayed records.
	applied := follower.ReplStatus().Indices[crashIndex]
	if err := follower.Close(); err != nil {
		t.Fatalf("close follower: %v", err)
	}
	re := openDurable(t, fdir)
	defer re.Close()
	re.SetFollower()
	if got := re.ReplStatus().Indices[crashIndex]; got != applied {
		t.Fatalf("reopened follower at seq %d, want %d", got, applied)
	}
	if got := fingerprint(t, re); got != want {
		t.Fatalf("reopened follower diverged")
	}
}

// TestReplRangeAcrossSnapshot checks that the tail buffer carries a lagging
// follower across a primary snapshot (the live WAL is truncated, but the
// buffered frames remain) — no bootstrap needed. With the buffer disabled the
// same lag must demand a bootstrap, and the bootstrap must converge.
func TestReplRangeAcrossSnapshot(t *testing.T) {
	t.Run("buffered", func(t *testing.T) {
		primary := openDurable(t, t.TempDir())
		defer primary.Close()
		primary.ArmReplication()
		follower := New()
		follower.SetFollower()

		ingestRound(t, primary, 0)
		pump(t, primary, follower, crashIndex, false) // catch up pre-snapshot
		ingestRound(t, primary, 1)                    // journaled + buffered
		if err := primary.Snapshot(); err != nil {
			t.Fatalf("snapshot: %v", err)
		}
		ingestRound(t, primary, 2)
		pump(t, primary, follower, crashIndex, false) // must cross the snapshot via the buffer
		if got, want := fingerprint(t, follower), fingerprint(t, controlStore(t, 3)); got != want {
			t.Fatalf("follower diverged after snapshot-crossing catch-up")
		}
	})
	t.Run("unbuffered-bootstrap", func(t *testing.T) {
		primary := openDurable(t, t.TempDir(), WithReplicationBuffer(0))
		defer primary.Close()
		primary.ArmReplication()
		follower := openDurable(t, t.TempDir())
		defer follower.Close()
		follower.SetFollower()

		ingestRound(t, primary, 0)
		if err := primary.Snapshot(); err != nil {
			t.Fatalf("snapshot: %v", err)
		}
		ingestRound(t, primary, 1)
		// The follower is at 0, the records up to the snapshot are folded into
		// the segment, and there is no buffer: only a bootstrap serves this.
		_, _, bootstrap, err := primary.ReplRange(crashIndex, 0, nil, 0, 0)
		if err != nil {
			t.Fatalf("repl range: %v", err)
		}
		if !bootstrap {
			t.Fatalf("expected bootstrap demand with buffer disabled after snapshot")
		}
		pump(t, primary, follower, crashIndex, true)
		if got, want := fingerprint(t, follower), fingerprint(t, controlStore(t, 2)); got != want {
			t.Fatalf("bootstrapped follower diverged")
		}
	})
}

// TestReplApplySeqReject checks the follower's duplicate/reorder guard: a
// push from any position other than the applied sequence bounces with the
// follower's position inside *ReplSeqError, and applies nothing.
func TestReplApplySeqReject(t *testing.T) {
	primary := openDurable(t, t.TempDir())
	defer primary.Close()
	primary.ArmReplication()
	follower := New()
	follower.SetFollower()
	ctx := context.Background()

	ingestRound(t, primary, 0)
	frames, head, _, err := primary.ReplRange(crashIndex, 0, nil, 0, 0)
	if err != nil {
		t.Fatalf("repl range: %v", err)
	}
	if _, err := follower.ReplApply(ctx, crashIndex, 0, frames); err != nil {
		t.Fatalf("first apply: %v", err)
	}
	want := fingerprint(t, follower)

	// Duplicate push (network retry of an acked batch): rejected, state intact.
	_, err = follower.ReplApply(ctx, crashIndex, 0, frames)
	var se *ReplSeqError
	if !errors.As(err, &se) || se.Want != head || se.Got != 0 {
		t.Fatalf("duplicate push: err=%v, want ReplSeqError{Want:%d, Got:0}", err, head)
	}
	// Future push (reordered ahead of a lost batch): rejected too.
	future := []ReplFrame{{Seq: head + 5, Type: durable.RecordDocs}}
	if _, err := follower.ReplApply(ctx, crashIndex, head+5, future); !errors.As(err, &se) {
		t.Fatalf("future push: err=%v, want ReplSeqError", err)
	}
	// Frame whose Seq disagrees with its position in the batch: rejected.
	bad := append([]ReplFrame{}, frames...)
	bad[0].Seq = head + 1 // claims to be the second next record, not the next
	if _, err := follower.ReplApply(ctx, crashIndex, head, bad[:1]); !errors.As(err, &se) {
		t.Fatalf("mis-sequenced frame: err=%v, want ReplSeqError", err)
	}
	if got := fingerprint(t, follower); got != want {
		t.Fatalf("rejected pushes mutated follower state")
	}
	// A primary must never accept pushes at all.
	if _, err := primary.ReplApply(ctx, crashIndex, 0, frames); !errors.Is(err, ErrNotFollower) {
		t.Fatalf("primary accepted replication push: %v", err)
	}
}

// TestFollowerRejectsWrites checks the read-only guard on every mutating
// entry point, and that promotion lifts it.
func TestFollowerRejectsWrites(t *testing.T) {
	st := New()
	st.SetFollower()
	ctx := context.Background()
	if err := st.Bulk(ctx, crashIndex, crashDocs(0)); !errors.Is(err, ErrReadOnlyFollower) {
		t.Fatalf("Bulk on follower: %v", err)
	}
	if err := st.BulkEvents(ctx, crashIndex, crashEvents(0)); !errors.Is(err, ErrReadOnlyFollower) {
		t.Fatalf("BulkEvents on follower: %v", err)
	}
	if _, err := st.UpdateByQuery(ctx, crashIndex, MatchAll(), func(Document) bool { return false }); !errors.Is(err, ErrReadOnlyFollower) {
		t.Fatalf("UpdateByQuery on follower: %v", err)
	}
	if _, err := st.Correlate(ctx, crashIndex, "s"); !errors.Is(err, ErrReadOnlyFollower) {
		t.Fatalf("Correlate on follower: %v", err)
	}
	st.Promote()
	if st.Role() != RolePrimary {
		t.Fatalf("role after promote = %v", st.Role())
	}
	if err := st.Bulk(ctx, crashIndex, crashDocs(0)); err != nil {
		t.Fatalf("Bulk after promote: %v", err)
	}
}

// TestReplHTTPEndpoints drives the whole wire surface through real servers
// and the Client: status, apply (including the 409 mismatch mapping), write
// rejection, bootstrap, and promote.
func TestReplHTTPEndpoints(t *testing.T) {
	primary := openDurable(t, t.TempDir())
	defer primary.Close()
	primary.ArmReplication()
	follower := New()
	follower.SetFollower()
	fsrv := httptest.NewServer(NewServer(follower))
	defer fsrv.Close()
	fc := NewClient(fsrv.URL, WithAPIPrefix("/v1"))
	ctx := context.Background()

	st, err := fc.ReplStatus(ctx)
	if err != nil {
		t.Fatalf("repl status: %v", err)
	}
	if st.Role != "follower" {
		t.Fatalf("status role = %q", st.Role)
	}

	ingestRound(t, primary, 0)
	frames, head, _, err := primary.ReplRange(crashIndex, 0, nil, 0, 0)
	if err != nil {
		t.Fatalf("repl range: %v", err)
	}
	applied, err := fc.ReplApply(ctx, crashIndex, 0, frames)
	if err != nil {
		t.Fatalf("apply over HTTP: %v", err)
	}
	if applied != head {
		t.Fatalf("applied = %d, want %d", applied, head)
	}
	if got, want := fingerprint(t, follower), fingerprint(t, primary); got != want {
		t.Fatalf("HTTP-replicated follower diverged from primary")
	}

	// Duplicate push → 409, non-temporary (the shipper must not blind-retry).
	_, err = fc.ReplApply(ctx, crashIndex, 0, frames)
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != 409 {
		t.Fatalf("duplicate over HTTP: %v, want 409", err)
	}
	if he.Temporary() {
		t.Fatalf("409 mismatch reported as temporary; the ladder would retry it")
	}
	// Direct writes to the follower → 409 as well.
	if err := fc.Bulk(ctx, crashIndex, crashDocs(9)); !errors.As(err, &he) || he.Status != 409 {
		t.Fatalf("bulk to follower over HTTP: %v, want 409", err)
	}
	// Pushing to a primary → 403.
	psrv := httptest.NewServer(NewServer(primary))
	defer psrv.Close()
	pc := NewClient(psrv.URL, WithAPIPrefix("/v1"))
	if _, err := pc.ReplApply(ctx, crashIndex, 0, frames); !errors.As(err, &he) || he.Status != 403 {
		t.Fatalf("apply to primary over HTTP: %v, want 403", err)
	}

	// Bootstrap over HTTP, then promote over HTTP.
	snap, err := primary.ReplBootstrapFrames(crashIndex, 0)
	if err != nil {
		t.Fatalf("bootstrap frames: %v", err)
	}
	if err := fc.ReplBootstrap(ctx, crashIndex, snap); err != nil {
		t.Fatalf("bootstrap over HTTP: %v", err)
	}
	if got, want := fingerprint(t, follower), fingerprint(t, primary); got != want {
		t.Fatalf("HTTP-bootstrapped follower diverged")
	}
	if err := fc.Promote(ctx); err != nil {
		t.Fatalf("promote over HTTP: %v", err)
	}
	if follower.Role() != RolePrimary {
		t.Fatalf("role after HTTP promote = %v", follower.Role())
	}
	if err := fc.Bulk(ctx, crashIndex, crashDocs(3)); err != nil {
		t.Fatalf("bulk after promote: %v", err)
	}
}

// TestHealthEndpointShape checks the enriched /_health body: the legacy
// fields keep their exact names and types, and the new role/durability/
// replication detail rides along.
func TestHealthEndpointShape(t *testing.T) {
	st := openDurable(t, t.TempDir())
	defer st.Close()
	ingestRound(t, st, 0)
	st.RegisterReplicaHealth(func() ReplHealth {
		return ReplHealth{Target: "http://follower:9200", Lag: 7, LastSyncMS: 12}
	})
	srv := httptest.NewServer(NewServer(st))
	defer srv.Close()

	h, err := NewClient(srv.URL, WithAPIPrefix("/v1")).HealthStatus(context.Background())
	if err != nil {
		t.Fatalf("health status: %v", err)
	}
	if h.Status != "ok" || h.Indices != 1 || h.Role != "primary" || !h.Durable {
		t.Fatalf("health basics = %+v", h)
	}
	ih, ok := h.Index[crashIndex]
	if !ok {
		t.Fatalf("no per-index health for %q: %+v", crashIndex, h.Index)
	}
	if ih.Docs == 0 || ih.WALBytes == 0 || ih.HeadSeq == 0 || ih.DirtyRecords == 0 {
		t.Fatalf("index health not populated: %+v", ih)
	}
	if ih.FsyncAgeMS < 0 || ih.SnapshotAgeMS != -1 {
		t.Fatalf("freshness ages = fsync %d, snapshot %d (want ≥0 and -1)", ih.FsyncAgeMS, ih.SnapshotAgeMS)
	}
	if len(h.Replication) != 1 || h.Replication[0].Target != "http://follower:9200" || h.Replication[0].Lag != 7 {
		t.Fatalf("replication health = %+v", h.Replication)
	}

	// Legacy probes decode the same body into the old two-field shape.
	var legacy struct {
		Status  string `json:"status"`
		Indices int    `json:"indices"`
	}
	blob, _ := json.Marshal(h)
	if err := json.Unmarshal(blob, &legacy); err != nil || legacy.Status != "ok" || legacy.Indices != 1 {
		t.Fatalf("legacy health shape broken: %+v err=%v", legacy, err)
	}
}

// TestFailoverClientRedirects kills the primary mid-session and checks that
// the failover client finds the promoted follower, resumes a search_after
// cursor across the switch, and routes subsequent writes to the new primary.
func TestFailoverClientRedirects(t *testing.T) {
	primary := openDurable(t, t.TempDir())
	defer primary.Close()
	primary.ArmReplication()
	follower := openDurable(t, t.TempDir())
	defer follower.Close()
	follower.SetFollower()

	psrv := httptest.NewServer(NewServer(primary))
	fsrv := httptest.NewServer(NewServer(follower))
	defer fsrv.Close()

	for r := 0; r < 3; r++ {
		ingestRound(t, primary, r)
	}
	pump(t, primary, follower, crashIndex, false)

	fo, err := NewFailoverClient(
		NewClient(psrv.URL, WithAPIPrefix("/v1")),
		NewClient(fsrv.URL, WithAPIPrefix("/v1")))
	if err != nil {
		t.Fatalf("failover client: %v", err)
	}
	ctx := context.Background()

	// Page 1 from the live primary.
	total, err := fo.Count(ctx, crashIndex, MatchAll())
	if err != nil {
		t.Fatalf("count via primary: %v", err)
	}
	page1, err := fo.SearchEvents(ctx, crashIndex, SearchRequest{
		Query: MatchAll(), Size: total / 2,
		Sort: []SortField{{Field: FieldTimeEnter}},
	})
	if err != nil {
		t.Fatalf("page 1: %v", err)
	}
	if len(page1.NextAfter) == 0 {
		t.Fatalf("page 1 returned no cursor")
	}

	// Kill the primary and promote the follower (the operator's move).
	psrv.Close()
	follower.Promote()

	// Page 2: the first attempt hits the dead primary; the client must probe,
	// find the promoted node, and resume the cursor there.
	page2, err := fo.SearchEvents(ctx, crashIndex, SearchRequest{
		Query: MatchAll(), Size: -1,
		Sort:        []SortField{{Field: FieldTimeEnter}},
		SearchAfter: page1.NextAfter,
	})
	if err != nil {
		t.Fatalf("page 2 after failover: %v", err)
	}
	if got := len(page1.Hits) + len(page2.Hits); got != total {
		t.Fatalf("paged %d events across failover, want %d", got, total)
	}
	if fo.Switches() != 1 {
		t.Fatalf("switches = %d, want 1", fo.Switches())
	}

	// Writes now land on the promoted node without further probing.
	if err := fo.Bulk(ctx, crashIndex, crashDocs(7)); err != nil {
		t.Fatalf("bulk after failover: %v", err)
	}
	n, err := follower.Count(ctx, crashIndex, MatchAll())
	if err != nil || n != total+len(crashDocs(7)) {
		t.Fatalf("post-failover count = %d, %v; want %d", n, err, total+len(crashDocs(7)))
	}
	if fo.Switches() != 1 {
		t.Fatalf("extra probe after failover: switches = %d", fo.Switches())
	}
}
