package store

import (
	"encoding/json"
	"testing"
	"testing/quick"
)

// TestQueryJSONRoundTrip ensures the query DSL survives the HTTP boundary:
// a query built in Go, marshaled, and unmarshaled must match the same
// documents.
func TestQueryJSONRoundTrip(t *testing.T) {
	ix := newFixtureIndex()
	queries := []Query{
		Term("syscall", "read"),
		Terms("syscall", "openat", "unlink"),
		RangeBetween("time_enter_ns", 200, 400),
		Prefix("kernel_path", "/tmp"),
		Exists("file_tag"),
		Must(Term("session", "s1"), Exists("offset")),
		MustNot(Term("proc_name", "app")),
		MatchAll(),
		{Bool: &BoolQuery{Should: []Query{Term("syscall", "read"), Term("syscall", "write")}}},
	}
	for i, q := range queries {
		raw, err := json.Marshal(q)
		if err != nil {
			t.Fatalf("query %d marshal: %v", i, err)
		}
		var back Query
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("query %d unmarshal: %v", i, err)
		}
		want := ix.Count(q)
		got := ix.Count(back)
		if want != got {
			t.Errorf("query %d (%s): count %d != %d after JSON round trip", i, raw, want, got)
		}
	}
}

// TestSearchRequestJSONRoundTrip covers sort, paging, and nested aggs.
func TestSearchRequestJSONRoundTrip(t *testing.T) {
	ix := newFixtureIndex()
	req := SearchRequest{
		Query: Term("session", "s1"),
		Sort:  []SortField{{Field: "time_enter_ns", Desc: true}},
		From:  1,
		Size:  2,
		Aggs: map[string]Agg{
			"tl": {
				DateHistogram: &DateHistogramAgg{Field: "time_enter_ns", IntervalNS: 100},
				Aggs:          map[string]Agg{"p": {Terms: &TermsAgg{Field: "proc_name", Size: 3}}},
			},
			"lat": {Percentiles: &PercentilesAgg{Field: "duration_ns", Percents: []float64{50, 99}}},
			"st":  {Stats: &StatsAgg{Field: "duration_ns"}},
		},
	}
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back SearchRequest
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	a := ix.Search(req)
	b := ix.Search(back)
	if a.Total != b.Total || len(a.Hits) != len(b.Hits) {
		t.Fatalf("hit mismatch: %d/%d vs %d/%d", a.Total, len(a.Hits), b.Total, len(b.Hits))
	}
	if len(a.Aggs["tl"].Buckets) != len(b.Aggs["tl"].Buckets) {
		t.Fatalf("agg mismatch: %+v vs %+v", a.Aggs["tl"], b.Aggs["tl"])
	}
	if a.Aggs["lat"].Percentiles["99"] != b.Aggs["lat"].Percentiles["99"] {
		t.Fatalf("percentile mismatch")
	}
	if a.Aggs["st"].Stats.Sum != b.Aggs["st"].Stats.Sum {
		t.Fatalf("stats mismatch")
	}
}

// TestValueEqualsCoercionProperty: numeric equality must be symmetric and
// type-insensitive the way Elasticsearch coerces JSON numbers.
func TestValueEqualsCoercionProperty(t *testing.T) {
	f := func(n int32) bool {
		v := int64(n)
		return valueEquals(v, float64(n)) &&
			valueEquals(float64(n), v) &&
			valueEquals(int(n), v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if valueEquals("5", 5) {
		t.Fatal("string '5' equals number 5")
	}
	if !valueEquals("a", "a") || valueEquals("a", "b") {
		t.Fatal("string comparison broken")
	}
	if !valueEquals(true, 1) || !valueEquals(false, 0) {
		t.Fatal("bool coercion broken")
	}
}

// TestConcurrentIndexAndSearch exercises the store under a writer and
// several readers, as happens while the tracer streams events and the
// visualizer queries in near real time.
func TestConcurrentIndexAndSearch(t *testing.T) {
	ix := NewIndex("live")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			ix.Add(Document{"syscall": "write", "time_enter_ns": int64(i)})
		}
	}()
	for ix.Len() < 2000 {
		resp := ix.Search(SearchRequest{
			Query: Term("syscall", "write"),
			Aggs:  map[string]Agg{"c": {Stats: &StatsAgg{Field: "time_enter_ns"}}},
		})
		if resp.Total != resp.Aggs["c"].Stats.Count {
			t.Fatalf("inconsistent snapshot: %d hits, %d agg count", resp.Total, resp.Aggs["c"].Stats.Count)
		}
	}
	<-done
	if got := ix.Count(MatchAll()); got != 2000 {
		t.Fatalf("final count = %d", got)
	}
}

// TestPercentileAggMatchesNearestRank cross-checks the store's percentile
// aggregation against the metrics package's definition on random data.
func TestPercentileAggMatchesNearestRank(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		ix := NewIndex("p")
		for _, v := range raw {
			ix.Add(Document{"v": int64(v)})
		}
		resp := ix.Search(SearchRequest{
			Query: MatchAll(),
			Aggs:  map[string]Agg{"p": {Percentiles: &PercentilesAgg{Field: "v", Percents: []float64{0, 50, 100}}}},
		})
		p := resp.Aggs["p"].Percentiles
		min, max := raw[0], raw[0]
		for _, v := range raw {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return p["0"] == float64(min) && p["100"] == float64(max) &&
			p["50"] >= float64(min) && p["50"] <= float64(max)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
