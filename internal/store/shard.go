package store

import (
	"sort"
	"sync"

	"github.com/dsrhaslab/dio-go/internal/event"
)

// shard is one lock stripe of an Index. Documents are distributed across
// shards round-robin by insertion order, so shard s of S holds the documents
// whose global ids are ≡ s (mod S) and the global id of the document at
// local position i is i*S + s. Per-shard global ids are therefore always
// sorted in append order, which the merge phase of Search relies on.
//
// Rows come in two representations. Typed rows (the tracer's ingest fast
// path) live in events as plain structs: docs[i] is nil and every read goes
// through the typed accessors — postings, columns, query evaluation, and
// aggregation never build a map. Generic rows (arbitrary JSON documents)
// live in docs as before. A Document for a typed row is materialized lazily
// (docView) and only where the generic DSL demands one.
type shard struct {
	mu   sync.RWMutex
	docs []Document // docs[i] != nil ⇒ generic row; nil ⇒ typed row in events
	// events backs the typed rows. It stays nil until the first typed add,
	// so all-generic workloads pay nothing for it; after that it is kept
	// parallel to docs (zero-valued at generic slots).
	events   []event.Event
	postings map[string]map[string][]int32 // field -> term -> local doc ids
	cols     map[string]*column            // lazy numeric columns, keyed by field
	rollup   *shardRollup                  // continuous rollup state, nil when disabled
}

// column is a pre-extracted numeric view of one field: vals[i] holds the
// float64 coercion of row i's field and ok[i] whether the field was numeric.
// Columns are built lazily up to the current doc count and extended on the
// next use after writes; UpdateByQuery drops them (it may mutate numeric
// fields in place).
type column struct {
	vals []float64
	ok   []bool
}

func newShard(rollupBase int64) *shard {
	p := make(map[string]map[string][]int32, len(indexedFields))
	for _, f := range indexedFields {
		p[f] = make(map[string][]int32)
	}
	sh := &shard{postings: p}
	if rollupBase > 0 {
		sh.rollup = newShardRollup(rollupBase)
	}
	return sh
}

// row adapts one shard slot to the query evaluator's fieldSource without
// materializing a Document. Callers reuse one row value across a scan and
// only bump id, so evaluation allocates nothing per slot.
type row struct {
	sh *shard
	id int32
}

func (r *row) field(name string) any { return r.sh.val(r.id, name) }

// val returns the document-view value of one field of row id (nil when
// absent). Typed rows box the value on demand; hot paths use strAt/numAt
// instead. Caller holds at least the read lock.
func (sh *shard) val(id int32, field string) any {
	if d := sh.docs[id]; d != nil {
		return d[field]
	}
	v, _ := sh.events[id].Field(field)
	return v
}

// numAt reads one numeric field without boxing. Caller holds at least the
// read lock.
func (sh *shard) numAt(id int32, field string) (float64, bool) {
	if d := sh.docs[id]; d != nil {
		return numeric(d[field])
	}
	return sh.events[id].NumericField(field)
}

// docView materializes row id as a Document: generic rows return the stored
// map, typed rows build the view on demand. Caller holds at least the read
// lock. Mutations to a typed row's view are NOT persisted — writers must go
// through UpdateByQuery, which round-trips the view back into the event.
func (sh *shard) docView(id int32) Document {
	if d := sh.docs[id]; d != nil {
		return d
	}
	return EventToDoc(&sh.events[id])
}

// eventView materializes row id as a typed event (generic rows convert
// best-effort through the schema). Caller holds at least the read lock.
func (sh *shard) eventView(id int32) event.Event {
	if d := sh.docs[id]; d != nil {
		return DocToEvent(d)
	}
	return sh.events[id]
}

// addLocked appends a generic document row and returns its local id. Caller
// holds the write lock.
func (sh *shard) addLocked(doc Document) int32 {
	if doc == nil {
		doc = Document{}
	}
	id := int32(len(sh.docs))
	sh.docs = append(sh.docs, doc)
	if sh.events != nil {
		sh.events = append(sh.events, event.Event{})
	}
	for _, f := range indexedFields {
		if s, ok := doc[f].(string); ok {
			sh.postings[f][s] = append(sh.postings[f][s], id)
		}
	}
	sh.rollup.addDoc(doc)
	return id
}

// addEventLocked appends a typed row and returns its local id: the struct is
// copied into columnar-friendly storage and the keyword postings are fed
// straight from its fields — no Document is built. Caller holds the write
// lock.
func (sh *shard) addEventLocked(e *event.Event) int32 {
	id := int32(len(sh.docs))
	if sh.events == nil && len(sh.docs) > 0 {
		// First typed row after generic ones: backfill the parallel slice.
		sh.events = make([]event.Event, len(sh.docs))
	}
	sh.docs = append(sh.docs, nil)
	sh.events = append(sh.events, *e)
	sh.postTermLocked(FieldSession, e.Session, id)
	sh.postTermLocked(FieldSyscall, e.Syscall, id)
	sh.postTermLocked(FieldClass, e.Class, id)
	sh.postTermLocked(FieldProcName, e.ProcName, id)
	sh.postTermLocked(FieldThreadName, e.ThreadName, id)
	sh.rollup.addEvent(e)
	return id
}

func (sh *shard) postTermLocked(field, term string, id int32) {
	// Empty terms are posted too: EventToDoc stores these five fields
	// unconditionally, so a generic row ingested through it lands "" in the
	// postings (addLocked) and a Term query for "" must answer the same over
	// typed rows.
	sh.postings[field][term] = append(sh.postings[field][term], id)
}

// indexedTerms is the posting-relevant view of one row: which of the
// indexed keyword fields post a term and with which value. Typed rows post
// all of them (addEventLocked); generic rows post only string values
// (addLocked), so has distinguishes "posts the empty string" from "does not
// post".
type indexedTerms struct {
	has [5]bool
	val [5]string
}

func docTerms(d Document) indexedTerms {
	var t indexedTerms
	for k, f := range indexedFields {
		t.val[k], t.has[k] = d[f].(string)
	}
	return t
}

func eventTerms(e *event.Event) indexedTerms {
	return indexedTerms{
		has: [5]bool{true, true, true, true, true},
		val: [5]string{e.Session, e.Syscall, e.ProcName, e.ThreadName, e.Class},
	}
}

// repostLocked reconciles the posting lists after a rewrite changed a row's
// indexed terms. Posting lists stay in ascending-id order — the searches,
// intersections, and the cursor's resume arithmetic all rely on it — so
// removal and insertion are positional, not appends. Caller holds the write
// lock.
func (sh *shard) repostLocked(id int32, before, after indexedTerms) {
	for k, f := range indexedFields {
		if before.has[k] == after.has[k] && before.val[k] == after.val[k] {
			continue
		}
		if before.has[k] {
			sh.unpostTermLocked(f, before.val[k], id)
		}
		if after.has[k] {
			sh.insertTermLocked(f, after.val[k], id)
		}
	}
}

func (sh *shard) unpostTermLocked(field, term string, id int32) {
	l := sh.postings[field][term]
	i := sort.Search(len(l), func(i int) bool { return l[i] >= id })
	if i == len(l) || l[i] != id {
		return
	}
	l = append(l[:i], l[i+1:]...)
	if len(l) == 0 {
		// A lingering empty list would surface as a zero-count bucket through
		// the postings fast path of termCounts.
		delete(sh.postings[field], term)
		return
	}
	sh.postings[field][term] = l
}

func (sh *shard) insertTermLocked(field, term string, id int32) {
	l := sh.postings[field][term]
	i := sort.Search(len(l), func(i int) bool { return l[i] >= id })
	if i < len(l) && l[i] == id {
		return
	}
	l = append(l, 0)
	copy(l[i+1:], l[i:])
	l[i] = id
	sh.postings[field][term] = l
}

// len returns the shard's doc count under its own lock.
func (sh *shard) len() int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.docs)
}

// ensureColumns builds or extends the numeric columns for fields so they
// cover every doc currently in the shard. It is called before the read phase
// of a search; docs appended concurrently afterwards are handled by the
// per-doc fallback in colVal.
func (sh *shard) ensureColumns(fields []string) {
	if len(fields) == 0 {
		return
	}
	sh.mu.RLock()
	need := false
	for _, f := range fields {
		if c := sh.cols[f]; c == nil || len(c.vals) < len(sh.docs) {
			need = true
			break
		}
	}
	sh.mu.RUnlock()
	if !need {
		return
	}
	sh.mu.Lock()
	if sh.cols == nil {
		sh.cols = make(map[string]*column)
	}
	for _, f := range fields {
		c := sh.cols[f]
		if c == nil {
			c = &column{}
			sh.cols[f] = c
		}
		for i := len(c.vals); i < len(sh.docs); i++ {
			v, ok := sh.numAt(int32(i), f)
			c.vals = append(c.vals, v)
			c.ok = append(c.ok, ok)
		}
	}
	sh.mu.Unlock()
}

// invalidateColumnsLocked drops all cached columns. Caller holds the write
// lock (used after in-place updates, which may change numeric fields).
func (sh *shard) invalidateColumnsLocked() {
	sh.cols = nil
}

// colVal reads one value through the column cache, falling back to the
// row's typed or map representation for ids past the built prefix. Caller
// holds at least the read lock.
func (sh *shard) colVal(c *column, field string, id int32) (float64, bool) {
	if c != nil && int(id) < len(c.vals) {
		return c.vals[id], c.ok[id]
	}
	return sh.numAt(id, field)
}

// cmpIDs orders two local docs under sorts, reading through the sort
// fields' columns (cols, aligned with sorts) when both values are numeric
// there, and falling back to the exact document-compare semantics otherwise.
// Caller holds at least the read lock.
func (sh *shard) cmpIDs(a, b int32, sorts []SortField, cols []*column) int {
	for i, s := range sorts {
		if c := cols[i]; c != nil && int(a) < len(c.vals) && int(b) < len(c.vals) && c.ok[a] && c.ok[b] {
			af, bf := c.vals[a], c.vals[b]
			if af == bf {
				continue
			}
			if (af < bf) != s.Desc {
				return -1
			}
			return 1
		}
		if r := cmpField(sh.val(a, s.Field), sh.val(b, s.Field), s.Desc); r != 0 {
			return r
		}
	}
	return 0
}

// matchIDs evaluates q and returns the local ids of matching docs in
// ascending order. The returned slice may alias a posting list and must not
// be mutated. useCols false forces the per-document scan paths (the legacy
// ablation mode). Caller holds at least the read lock.
func (sh *shard) matchIDs(q Query, useCols bool) []int32 {
	// Match-all: enumerate without consulting documents.
	if q.matchesAll() {
		out := make([]int32, len(sh.docs))
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	// Plain indexed term: the posting list is the answer.
	if q.Term != nil {
		if terms, ok := sh.postings[q.Term.Field]; ok {
			if val, isStr := q.Term.Value.(string); isStr {
				return terms[val]
			}
		}
	}
	// Top-level range with a built column: scan the column, not the docs.
	if useCols && q.Range != nil {
		if c := sh.cols[q.Range.Field]; c != nil {
			return sh.rangeScan(q.Range, c)
		}
	}
	// Bool/must: intersect every indexed keyword term's posting list, then
	// evaluate the residual query over the candidates only.
	if q.Bool != nil && len(q.Bool.Must) > 0 {
		if ids, ok := sh.boolCandidates(q, useCols); ok {
			return ids
		}
	}
	// Fallback: full scan through the row adapter (typed rows resolve
	// fields on demand, no map materialization).
	var out []int32
	r := row{sh: sh}
	for i := range sh.docs {
		r.id = int32(i)
		if q.matches(&r) {
			out = append(out, int32(i))
		}
	}
	return out
}

// rangeScan evaluates r over the column cache (plus the uncovered tail),
// sharing RangeQuery.contains with the per-document evaluator.
func (sh *shard) rangeScan(r *RangeQuery, c *column) []int32 {
	var out []int32
	n := len(c.vals)
	if n > len(sh.docs) {
		n = len(sh.docs)
	}
	for i := 0; i < n; i++ {
		if c.ok[i] && r.contains(c.vals[i]) {
			out = append(out, int32(i))
		}
	}
	for i := n; i < len(sh.docs); i++ {
		if f, ok := sh.numAt(int32(i), r.Field); ok && r.contains(f) {
			out = append(out, int32(i))
		}
	}
	return out
}

// isPureRange reports whether q is exactly one range clause, so it can be
// evaluated through a numeric column alone.
func (q Query) isPureRange() bool {
	return q.Range != nil && q.Term == nil && q.Terms == nil &&
		q.Prefix == nil && q.Exists == nil && q.Bool == nil
}

// boolCandidates resolves a bool query whose must clauses include indexed
// keyword terms (or, with columns, a leading range) by posting-list
// intersection followed by residual evaluation. ok is false when no clause
// can seed a candidate list, meaning the caller should scan.
func (sh *shard) boolCandidates(q Query, useCols bool) ([]int32, bool) {
	var lists [][]int32
	residualMust := make([]Query, 0, len(q.Bool.Must))
	for _, sub := range q.Bool.Must {
		if sub.Term != nil {
			if terms, ok := sh.postings[sub.Term.Field]; ok {
				if val, isStr := sub.Term.Value.(string); isStr {
					lists = append(lists, terms[val])
					continue
				}
			}
		}
		residualMust = append(residualMust, sub)
	}
	var candidates []int32
	switch {
	case len(lists) > 0:
		// Intersect smallest-first to keep intermediate sets minimal.
		sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
		candidates = lists[0]
		for _, l := range lists[1:] {
			candidates = intersectSorted(candidates, l)
			if len(candidates) == 0 {
				return nil, true
			}
		}
	case useCols && len(residualMust) > 0 && residualMust[0].isPureRange():
		r := residualMust[0].Range
		c := sh.cols[r.Field]
		if c == nil {
			return nil, false
		}
		candidates = sh.rangeScan(r, c)
		residualMust = residualMust[1:]
	default:
		return nil, false
	}
	// Pure range residuals read the numeric columns instead of going back to
	// the row storage; everything else falls through to the generic evaluator.
	var colRanges []*RangeQuery
	var colCols []*column
	if useCols {
		kept := residualMust[:0]
		for _, sub := range residualMust {
			if sub.isPureRange() {
				if c := sh.cols[sub.Range.Field]; c != nil {
					colRanges = append(colRanges, sub.Range)
					colCols = append(colCols, c)
					continue
				}
			}
			kept = append(kept, sub)
		}
		residualMust = kept
	}
	rest := Query{Bool: &BoolQuery{
		Must:    residualMust,
		Should:  q.Bool.Should,
		MustNot: q.Bool.MustNot,
	}}
	needRest := len(residualMust) > 0 || len(q.Bool.Should) > 0 || len(q.Bool.MustNot) > 0
	if !needRest && len(colRanges) == 0 {
		return candidates, true
	}
	var out []int32
	rrow := row{sh: sh}
next:
	for _, id := range candidates {
		for i, r := range colRanges {
			f, ok := sh.colVal(colCols[i], r.Field, id)
			if !ok || !r.contains(f) {
				continue next
			}
		}
		if needRest {
			rrow.id = id
			if !rest.matches(&rrow) {
				continue
			}
		}
		out = append(out, id)
	}
	return out, true
}

// intersectSorted intersects two ascending id lists.
func intersectSorted(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
