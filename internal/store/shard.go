package store

import (
	"sort"
	"sync"
)

// shard is one lock stripe of an Index. Documents are distributed across
// shards round-robin by insertion order, so shard s of S holds the documents
// whose global ids are ≡ s (mod S) and the global id of the document at
// local position i is i*S + s. Per-shard global ids are therefore always
// sorted in append order, which the merge phase of Search relies on.
type shard struct {
	mu       sync.RWMutex
	docs     []Document
	postings map[string]map[string][]int32 // field -> term -> local doc ids
	cols     map[string]*column            // lazy numeric columns, keyed by field
}

// column is a pre-extracted numeric view of one field: vals[i] holds the
// float64 coercion of docs[i][field] and ok[i] whether the field was numeric.
// Columns are built lazily up to the current doc count and extended on the
// next use after writes; UpdateByQuery drops them (it may mutate numeric
// fields in place).
type column struct {
	vals []float64
	ok   []bool
}

func newShard() *shard {
	p := make(map[string]map[string][]int32, len(indexedFields))
	for _, f := range indexedFields {
		p[f] = make(map[string][]int32)
	}
	return &shard{postings: p}
}

// add appends doc and returns its local id. Caller holds the write lock.
func (sh *shard) addLocked(doc Document) int32 {
	id := int32(len(sh.docs))
	sh.docs = append(sh.docs, doc)
	for _, f := range indexedFields {
		if s, ok := doc[f].(string); ok {
			sh.postings[f][s] = append(sh.postings[f][s], id)
		}
	}
	return id
}

// len returns the shard's doc count under its own lock.
func (sh *shard) len() int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.docs)
}

// ensureColumns builds or extends the numeric columns for fields so they
// cover every doc currently in the shard. It is called before the read phase
// of a search; docs appended concurrently afterwards are handled by the
// per-doc fallback in colVal.
func (sh *shard) ensureColumns(fields []string) {
	if len(fields) == 0 {
		return
	}
	sh.mu.RLock()
	need := false
	for _, f := range fields {
		if c := sh.cols[f]; c == nil || len(c.vals) < len(sh.docs) {
			need = true
			break
		}
	}
	sh.mu.RUnlock()
	if !need {
		return
	}
	sh.mu.Lock()
	if sh.cols == nil {
		sh.cols = make(map[string]*column)
	}
	for _, f := range fields {
		c := sh.cols[f]
		if c == nil {
			c = &column{}
			sh.cols[f] = c
		}
		for i := len(c.vals); i < len(sh.docs); i++ {
			v, ok := numeric(sh.docs[i][f])
			c.vals = append(c.vals, v)
			c.ok = append(c.ok, ok)
		}
	}
	sh.mu.Unlock()
}

// invalidateColumnsLocked drops all cached columns. Caller holds the write
// lock (used after in-place updates, which may change numeric fields).
func (sh *shard) invalidateColumnsLocked() {
	sh.cols = nil
}

// colVal reads one value through the column cache, falling back to the
// document map for ids past the built prefix. Caller holds at least the read
// lock.
func (sh *shard) colVal(c *column, field string, id int32) (float64, bool) {
	if c != nil && int(id) < len(c.vals) {
		return c.vals[id], c.ok[id]
	}
	return numeric(sh.docs[id][field])
}

// cmpIDs orders two local docs under sorts, reading through the sort
// fields' columns (cols, aligned with sorts) when both values are numeric
// there, and falling back to the exact document-compare semantics otherwise.
// Caller holds at least the read lock.
func (sh *shard) cmpIDs(a, b int32, sorts []SortField, cols []*column) int {
	for i, s := range sorts {
		if c := cols[i]; c != nil && int(a) < len(c.vals) && int(b) < len(c.vals) && c.ok[a] && c.ok[b] {
			af, bf := c.vals[a], c.vals[b]
			if af == bf {
				continue
			}
			if (af < bf) != s.Desc {
				return -1
			}
			return 1
		}
		if r := cmpField(sh.docs[a][s.Field], sh.docs[b][s.Field], s.Desc); r != 0 {
			return r
		}
	}
	return 0
}

// matchIDs evaluates q and returns the local ids of matching docs in
// ascending order. The returned slice may alias a posting list and must not
// be mutated. useCols false forces the per-document scan paths (the legacy
// ablation mode). Caller holds at least the read lock.
func (sh *shard) matchIDs(q Query, useCols bool) []int32 {
	// Match-all: enumerate without consulting documents.
	if q.matchesAll() {
		out := make([]int32, len(sh.docs))
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	// Plain indexed term: the posting list is the answer.
	if q.Term != nil {
		if terms, ok := sh.postings[q.Term.Field]; ok {
			if val, isStr := q.Term.Value.(string); isStr {
				return terms[val]
			}
		}
	}
	// Top-level range with a built column: scan the column, not the docs.
	if useCols && q.Range != nil {
		if c := sh.cols[q.Range.Field]; c != nil {
			return sh.rangeScan(q.Range, c)
		}
	}
	// Bool/must: intersect every indexed keyword term's posting list, then
	// evaluate the residual query over the candidates only.
	if q.Bool != nil && len(q.Bool.Must) > 0 {
		if ids, ok := sh.boolCandidates(q, useCols); ok {
			return ids
		}
	}
	// Fallback: full scan.
	var out []int32
	for i := range sh.docs {
		if q.Matches(sh.docs[i]) {
			out = append(out, int32(i))
		}
	}
	return out
}

// contains reports whether f satisfies every bound of r.
func (r *RangeQuery) contains(f float64) bool {
	if r.GTE != nil && f < *r.GTE {
		return false
	}
	if r.LTE != nil && f > *r.LTE {
		return false
	}
	if r.GT != nil && f <= *r.GT {
		return false
	}
	if r.LT != nil && f >= *r.LT {
		return false
	}
	return true
}

// rangeScan evaluates r over the column cache (plus the uncovered tail).
func (sh *shard) rangeScan(r *RangeQuery, c *column) []int32 {
	var out []int32
	n := len(c.vals)
	if n > len(sh.docs) {
		n = len(sh.docs)
	}
	for i := 0; i < n; i++ {
		if c.ok[i] && r.contains(c.vals[i]) {
			out = append(out, int32(i))
		}
	}
	for i := n; i < len(sh.docs); i++ {
		if f, ok := numeric(sh.docs[i][r.Field]); ok && r.contains(f) {
			out = append(out, int32(i))
		}
	}
	return out
}

// isPureRange reports whether q is exactly one range clause, so it can be
// evaluated through a numeric column alone.
func (q Query) isPureRange() bool {
	return q.Range != nil && q.Term == nil && q.Terms == nil &&
		q.Prefix == nil && q.Exists == nil && q.Bool == nil
}

// boolCandidates resolves a bool query whose must clauses include indexed
// keyword terms (or, with columns, a leading range) by posting-list
// intersection followed by residual evaluation. ok is false when no clause
// can seed a candidate list, meaning the caller should scan.
func (sh *shard) boolCandidates(q Query, useCols bool) ([]int32, bool) {
	var lists [][]int32
	residualMust := make([]Query, 0, len(q.Bool.Must))
	for _, sub := range q.Bool.Must {
		if sub.Term != nil {
			if terms, ok := sh.postings[sub.Term.Field]; ok {
				if val, isStr := sub.Term.Value.(string); isStr {
					lists = append(lists, terms[val])
					continue
				}
			}
		}
		residualMust = append(residualMust, sub)
	}
	var candidates []int32
	switch {
	case len(lists) > 0:
		// Intersect smallest-first to keep intermediate sets minimal.
		sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
		candidates = lists[0]
		for _, l := range lists[1:] {
			candidates = intersectSorted(candidates, l)
			if len(candidates) == 0 {
				return nil, true
			}
		}
	case useCols && len(residualMust) > 0 && residualMust[0].isPureRange():
		r := residualMust[0].Range
		c := sh.cols[r.Field]
		if c == nil {
			return nil, false
		}
		candidates = sh.rangeScan(r, c)
		residualMust = residualMust[1:]
	default:
		return nil, false
	}
	// Pure range residuals read the numeric columns instead of going back to
	// the document maps; everything else falls through to Query.Matches.
	var colRanges []*RangeQuery
	var colCols []*column
	if useCols {
		kept := residualMust[:0]
		for _, sub := range residualMust {
			if sub.isPureRange() {
				if c := sh.cols[sub.Range.Field]; c != nil {
					colRanges = append(colRanges, sub.Range)
					colCols = append(colCols, c)
					continue
				}
			}
			kept = append(kept, sub)
		}
		residualMust = kept
	}
	rest := Query{Bool: &BoolQuery{
		Must:    residualMust,
		Should:  q.Bool.Should,
		MustNot: q.Bool.MustNot,
	}}
	needRest := len(residualMust) > 0 || len(q.Bool.Should) > 0 || len(q.Bool.MustNot) > 0
	if !needRest && len(colRanges) == 0 {
		return candidates, true
	}
	var out []int32
next:
	for _, id := range candidates {
		for i, r := range colRanges {
			f, ok := sh.colVal(colCols[i], r.Field, id)
			if !ok || !r.contains(f) {
				continue next
			}
		}
		if needRest && !rest.Matches(sh.docs[id]) {
			continue
		}
		out = append(out, id)
	}
	return out, true
}

// intersectSorted intersects two ascending id lists.
func intersectSorted(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
