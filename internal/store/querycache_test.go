package store

import (
	"context"
	"encoding/json"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/dsrhaslab/dio-go/internal/telemetry"
)

// TestCacheKeyCanonicalization pins the fingerprint's equivalence classes:
// requests that must hit the same cache line produce identical keys, and
// requests that can answer differently never collide.
func TestCacheKeyCanonicalization(t *testing.T) {
	same := []struct {
		name string
		a, b SearchRequest
	}{
		{
			"terms value order",
			SearchRequest{Query: Terms(FieldSyscall, "write", "read", "read"), Size: 10},
			SearchRequest{Query: Terms(FieldSyscall, "read", "write"), Size: 10},
		},
		{
			"single-must bool unwraps to its clause",
			SearchRequest{Query: Must(Term(FieldSyscall, "read")), Size: 10},
			SearchRequest{Query: Term(FieldSyscall, "read"), Size: 10},
		},
		{
			"bool clause order and duplicates",
			SearchRequest{Query: Must(Term(FieldSyscall, "read"), Term(FieldSession, "s1"), Term(FieldSession, "s1")), Size: 10},
			SearchRequest{Query: Must(Term(FieldSession, "s1"), Term(FieldSyscall, "read")), Size: 10},
		},
		{
			"gt n folds to gte n+1 on an integer field",
			SearchRequest{Query: rangeGT(FieldDuration, 499), Size: 10},
			SearchRequest{Query: RangeGTE(FieldDuration, 500), Size: 10},
		},
		{
			"percentile order, duplicates, and the default set",
			SearchRequest{Size: 1, Aggs: map[string]Agg{"p": {Percentiles: &PercentilesAgg{Field: FieldDuration, Percents: []float64{99, 50, 95, 90, 99}}}}},
			SearchRequest{Size: 1, Aggs: map[string]Agg{"p": {Percentiles: &PercentilesAgg{Field: FieldDuration}}}},
		},
	}
	for _, tc := range same {
		ka, kb := cacheKey('S', tc.a, true), cacheKey('S', tc.b, true)
		if ka != kb {
			t.Errorf("%s: keys differ\n a %q\n b %q", tc.name, ka, kb)
		}
	}

	diff := []struct {
		name string
		a, b SearchRequest
	}{
		{
			"gt vs gte at the same bound",
			SearchRequest{Query: rangeGT(FieldDuration, 500), Size: 10},
			SearchRequest{Query: RangeGTE(FieldDuration, 500), Size: 10},
		},
		{
			"window position",
			SearchRequest{Query: MatchAll(), Size: 10},
			SearchRequest{Query: MatchAll(), From: 10, Size: 10},
		},
		{
			"sort direction",
			SearchRequest{Query: MatchAll(), Sort: []SortField{{Field: FieldTimeEnter}}, Size: 10},
			SearchRequest{Query: MatchAll(), Sort: []SortField{{Field: FieldTimeEnter, Desc: true}}, Size: 10},
		},
		{
			"cursor position",
			SearchRequest{Query: MatchAll(), Size: 10},
			SearchRequest{Query: MatchAll(), Size: 10, SearchAfter: []any{float64(7)}},
		},
	}
	for _, tc := range diff {
		ka, kb := cacheKey('S', tc.a, true), cacheKey('S', tc.b, true)
		if ka == kb {
			t.Errorf("%s: keys collide: %q", tc.name, ka)
		}
	}

	// The int-range fold is only sound while the index holds typed events
	// exclusively; with generic documents present (intSafe=false) the two
	// spellings must stay distinct.
	gt := SearchRequest{Query: rangeGT(FieldDuration, 499), Size: 10}
	gte := SearchRequest{Query: RangeGTE(FieldDuration, 500), Size: 10}
	if cacheKey('S', gt, false) == cacheKey('S', gte, false) {
		t.Error("gt/gte folded despite generic documents in the index")
	}

	// Typed and document searches of the same request are distinct lines.
	q := SearchRequest{Query: MatchAll(), Size: 10}
	if cacheKey('S', q, true) == cacheKey('E', q, true) {
		t.Error("document and typed search share a cache line")
	}
}

// TestCacheKeyWireOrderInvariance decodes the same query JSON with its
// object keys in two different orders: the fingerprints must match, so a
// dashboard re-render that serializes its request differently still hits.
func TestCacheKeyWireOrderInvariance(t *testing.T) {
	a := `{"size":5,"query":{"bool":{"must":[{"term":{"field":"syscall","value":"read"}},{"range":{"field":"duration_ns","gte":100,"lte":900}}]}},"aggs":{"h":{"date_histogram":{"field":"time_enter_ns","interval_ns":1000}},"t":{"terms":{"field":"syscall"}}}}`
	b := `{"aggs":{"t":{"terms":{"field":"syscall"}},"h":{"date_histogram":{"interval_ns":1000,"field":"time_enter_ns"}}},"query":{"bool":{"must":[{"range":{"lte":900,"gte":100,"field":"duration_ns"}},{"term":{"value":"read","field":"syscall"}}]}},"size":5}`
	var ra, rb SearchRequest
	if err := json.Unmarshal([]byte(a), &ra); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(b), &rb); err != nil {
		t.Fatal(err)
	}
	ka, kb := cacheKey('S', ra, true), cacheKey('S', rb, true)
	if ka != kb {
		t.Errorf("wire key order changed the fingerprint:\n a %q\n b %q", ka, kb)
	}
}

func counterDelta(t *testing.T, reg *telemetry.Registry, name string, base uint64) uint64 {
	t.Helper()
	return reg.Snapshot().Counters[name] - base
}

// TestQueryCacheServesAndInvalidates walks the cache through its life
// cycle against the public Store API: miss on first sight, hit on repeat,
// invalidated by every mutation kind, LRU-bounded, and bypassed for
// uncacheable (size<=0) requests.
func TestQueryCacheServesAndInvalidates(t *testing.T) {
	st, err := Open(WithQueryCache(2))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ctx := context.Background()
	reg := st.Telemetry()
	if err := st.BulkEvents(ctx, "run", cursorFixture(600)); err != nil {
		t.Fatal(err)
	}

	req := SearchRequest{
		Query: Term(FieldSession, "s1"),
		Size:  1,
		Aggs:  map[string]Agg{"by_syscall": {Terms: &TermsAgg{Field: FieldSyscall}}},
	}
	hits0 := reg.Snapshot().Counters[telemetry.MetricQueryCacheHits]
	first, err := st.Search(ctx, "run", req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := st.Search(ctx, "run", req)
	if err != nil {
		t.Fatal(err)
	}
	if d := counterDelta(t, reg, telemetry.MetricQueryCacheHits, hits0); d != 1 {
		t.Fatalf("repeat search: %d cache hits, want 1", d)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cached response differs from computed response")
	}

	// Each mutation kind must invalidate: the next search recomputes.
	mutate := []struct {
		name string
		do   func() error
	}{
		{"BulkEvents", func() error { return st.BulkEvents(ctx, "run", cursorFixture(8)) }},
		{"Bulk", func() error { return st.Bulk(ctx, "run", docFixture()) }},
		{"UpdateByQuery", func() error {
			_, err := st.UpdateByQuery(ctx, "run", Term(FieldSyscall, "read"), func(d Document) bool {
				d["seen"] = true
				return true
			})
			return err
		}},
	}
	for _, m := range mutate {
		if err := m.do(); err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		h0 := reg.Snapshot().Counters[telemetry.MetricQueryCacheHits]
		m0 := reg.Snapshot().Counters[telemetry.MetricQueryCacheMisses]
		if _, err := st.Search(ctx, "run", req); err != nil {
			t.Fatal(err)
		}
		if d := counterDelta(t, reg, telemetry.MetricQueryCacheHits, h0); d != 0 {
			t.Errorf("after %s: search hit the cache (%d hits); mutation did not invalidate", m.name, d)
		}
		if d := counterDelta(t, reg, telemetry.MetricQueryCacheMisses, m0); d != 1 {
			t.Errorf("after %s: %d misses, want 1", m.name, d)
		}
	}

	// Capacity 2: three distinct queries evict the oldest line.
	ev0 := reg.Snapshot().Counters[telemetry.MetricQueryCacheEvictions]
	for i := 0; i < 3; i++ {
		r := req
		r.Size = i + 2
		if _, err := st.Search(ctx, "run", r); err != nil {
			t.Fatal(err)
		}
	}
	if d := counterDelta(t, reg, telemetry.MetricQueryCacheEvictions, ev0); d == 0 {
		t.Error("three distinct queries in a 2-entry cache evicted nothing")
	}
	if got := reg.Snapshot().Gauges[telemetry.MetricQueryCacheEntries]; got > 2 {
		t.Errorf("cache entries gauge = %v, want <= 2", got)
	}

	// size<=0 requests bypass the cache entirely.
	h0 := reg.Snapshot().Counters[telemetry.MetricQueryCacheHits]
	m0 := reg.Snapshot().Counters[telemetry.MetricQueryCacheMisses]
	all := SearchRequest{Query: MatchAll(), Size: -1}
	for i := 0; i < 2; i++ {
		if _, err := st.Search(ctx, "run", all); err != nil {
			t.Fatal(err)
		}
	}
	if counterDelta(t, reg, telemetry.MetricQueryCacheHits, h0) != 0 || counterDelta(t, reg, telemetry.MetricQueryCacheMisses, m0) != 0 {
		t.Error("size=-1 search touched the cache")
	}
}

// TestCacheInvalidationStress races cached readers against writers under
// the race detector: every response a reader observes must be at least as
// fresh as the writer progress it already knew (no stale read escapes the
// epoch check), and when the dust settles the ledger closes — the bulk-docs
// counter, the index length, and an uncached recount all agree.
func TestCacheInvalidationStress(t *testing.T) {
	st, err := Open(WithQueryCache(64))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ctx := context.Background()
	const batches = 40
	const perBatch = 64

	if err := st.BulkEvents(ctx, "run", cursorFixture(perBatch)); err != nil {
		t.Fatal(err)
	}
	var written atomic.Int64 // events acked so far, the reader's freshness floor
	written.Store(perBatch)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < batches; i++ {
			if err := st.BulkEvents(ctx, "run", cursorFixture(perBatch)); err != nil {
				t.Error(err)
				return
			}
			written.Add(perBatch)
			if i%8 == 7 {
				if _, err := st.UpdateByQuery(ctx, "run", Term(FieldSyscall, "fsync"), func(d Document) bool {
					d["touched"] = true
					return true
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	reqs := []SearchRequest{
		{Query: MatchAll(), Size: 1},
		{Query: MatchAll(), Size: 1, Aggs: map[string]Agg{"by_syscall": {Terms: &TermsAgg{Field: FieldSyscall}}}},
		{Query: Term(FieldSession, "s0"), Size: 4, Sort: []SortField{{Field: FieldTimeEnter, Desc: true}}},
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				floor := written.Load()
				resp, err := st.Search(ctx, "run", reqs[r%len(reqs)])
				if err != nil {
					t.Error(err)
					return
				}
				if r%len(reqs) != 2 && int64(resp.Total) < floor {
					t.Errorf("stale read escaped: total %d < %d events already acked", resp.Total, floor)
					return
				}
				ev, err := st.SearchEvents(ctx, "run", SearchRequest{Query: MatchAll(), Size: 2})
				if err != nil {
					t.Error(err)
					return
				}
				if int64(ev.Total) < floor {
					t.Errorf("stale typed read escaped: total %d < %d", ev.Total, floor)
					return
				}
			}
		}(r)
	}
	wg.Wait()

	// Conservation: counter, index length, cached recount, and an uncached
	// (size=-1, cache-bypassing) recount all see every event written.
	want := int((batches + 1) * perBatch)
	if got := st.Telemetry().Snapshot().Counters[telemetry.MetricBulkDocs]; got != uint64(want) {
		t.Errorf("bulk-docs counter = %d, want %d", got, want)
	}
	cached, err := st.Search(ctx, "run", SearchRequest{Query: MatchAll(), Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := st.Search(ctx, "run", SearchRequest{Query: MatchAll(), Size: -1})
	if err != nil {
		t.Fatal(err)
	}
	if cached.Total != want || uncached.Total != want || len(uncached.Hits) != want {
		t.Errorf("ledger open: cached %d, uncached %d (%d hits), want %d",
			cached.Total, uncached.Total, len(uncached.Hits), want)
	}
	n, err := st.Count(ctx, "run", MatchAll())
	if err != nil || n != want {
		t.Errorf("count = (%d, %v), want %d", n, err, want)
	}
}

// rangeGT builds a strict lower-bound range query (no public helper
// exists; strict bounds normally arrive over the wire).
func rangeGT(field string, gt float64) Query {
	return Query{Range: &RangeQuery{Field: field, GT: &gt}}
}
