package event

import "testing"

// FuzzParseFileTag must never panic, and accepted tags must round-trip.
func FuzzParseFileTag(f *testing.F) {
	f.Add("7340032 12 2156997363734041")
	f.Add("")
	f.Add("1 2")
	f.Add("a b c")
	f.Add("-1 -2 -3")
	f.Fuzz(func(t *testing.T, s string) {
		tag, err := ParseFileTag(s)
		if err != nil || tag.Zero() {
			// The zero tag renders as the empty string by design (unset
			// tags are omitted from events), so it cannot round-trip.
			return
		}
		back, err := ParseFileTag(tag.String())
		if err != nil {
			t.Fatalf("accepted tag %q did not round-trip: %v", s, err)
		}
		if back != tag {
			t.Fatalf("round trip mismatch: %+v vs %+v", tag, back)
		}
	})
}
