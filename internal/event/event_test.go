package event

import (
	"encoding/json"
	"testing"
	"testing/quick"
)

func TestFileTagString(t *testing.T) {
	ft := FileTag{Dev: 7340032, Ino: 12, BirthNS: 2156997363734041}
	want := "7340032 12 2156997363734041"
	if got := ft.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestFileTagZero(t *testing.T) {
	var ft FileTag
	if !ft.Zero() {
		t.Fatal("zero tag not Zero()")
	}
	if ft.String() != "" {
		t.Fatalf("zero tag String() = %q, want empty", ft.String())
	}
	if (FileTag{Ino: 1}).Zero() {
		t.Fatal("non-zero tag reported Zero()")
	}
}

func TestParseFileTagRoundTrip(t *testing.T) {
	f := func(dev, ino uint64, birth int64) bool {
		in := FileTag{Dev: dev, Ino: ino, BirthNS: birth}
		if in.Zero() {
			return true
		}
		out, err := ParseFileTag(in.String())
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseFileTagErrors(t *testing.T) {
	for _, bad := range []string{"", "1 2", "a b c", "1 2 3 4", "1 x 3", "1 2 z"} {
		if _, err := ParseFileTag(bad); err == nil {
			t.Errorf("ParseFileTag(%q) succeeded, want error", bad)
		}
	}
}

func TestEventDurationAndFailed(t *testing.T) {
	e := Event{TimeEnterNS: 100, TimeExitNS: 350, RetVal: -2}
	if e.DurationNS() != 250 {
		t.Fatalf("duration = %d", e.DurationNS())
	}
	if !e.Failed() {
		t.Fatal("negative ret not Failed()")
	}
	e.RetVal = 0
	if e.Failed() {
		t.Fatal("zero ret reported Failed()")
	}
}

func TestOffsetOrBlank(t *testing.T) {
	e := Event{Offset: 26, HasOffset: true}
	if got := e.OffsetOrBlank(); got != "26" {
		t.Fatalf("OffsetOrBlank = %q", got)
	}
	e.HasOffset = false
	if got := e.OffsetOrBlank(); got != "" {
		t.Fatalf("OffsetOrBlank = %q, want empty", got)
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	in := Event{
		Session:     "s1",
		Syscall:     "openat",
		Class:       "metadata",
		RetVal:      3,
		FD:          -100,
		ArgPath:     "/tmp/app.log",
		PID:         101,
		TID:         102,
		ProcName:    "app",
		ThreadName:  "app",
		TimeEnterNS: 1,
		TimeExitNS:  2,
		FileTag:     FileTag{Dev: 7340032, Ino: 12, BirthNS: 99},
		FileType:    "regular",
		HasOffset:   true,
		Offset:      0,
		KernelPath:  "/tmp/app.log",
	}
	raw, err := json.Marshal(&in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out Event
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out != in {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}
