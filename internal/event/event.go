// Package event defines the trace event model shared by the tracer, the
// analysis backend, and the visualizer: one Event per syscall, carrying the
// request information (type, arguments, return value), process information
// (PID, TID, process and thread names), entry/exit timestamps, and the
// kernel-context enrichment (file type, file offset, file tag) described in
// §II-B of the paper.
package event

import (
	"fmt"
	"strconv"
	"strings"
)

// FileTag uniquely identifies the file accessed by a syscall, even across
// inode-number reuse: device number, inode number, and the first-access
// (inode birth) timestamp. It is the key input to the file-path correlation
// algorithm (§II-C).
type FileTag struct {
	Dev     uint64 `json:"dev_no"`
	Ino     uint64 `json:"inode_no"`
	BirthNS int64  `json:"timestamp"`
}

// Zero reports whether the tag is unset.
func (ft FileTag) Zero() bool { return ft.Dev == 0 && ft.Ino == 0 && ft.BirthNS == 0 }

// String renders the tag in the "dev_no inode_no timestamp" form used by the
// paper's Fig. 2 tables.
func (ft FileTag) String() string {
	if ft.Zero() {
		return ""
	}
	var b strings.Builder
	b.Grow(40)
	b.WriteString(strconv.FormatUint(ft.Dev, 10))
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(ft.Ino, 10))
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(ft.BirthNS, 10))
	return b.String()
}

// ParseFileTag parses the String form back into a FileTag.
func ParseFileTag(s string) (FileTag, error) {
	parts := strings.Fields(s)
	if len(parts) != 3 {
		return FileTag{}, fmt.Errorf("file tag %q: want 3 fields", s)
	}
	dev, err := strconv.ParseUint(parts[0], 10, 64)
	if err != nil {
		return FileTag{}, fmt.Errorf("file tag dev: %w", err)
	}
	ino, err := strconv.ParseUint(parts[1], 10, 64)
	if err != nil {
		return FileTag{}, fmt.Errorf("file tag ino: %w", err)
	}
	ts, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		return FileTag{}, fmt.Errorf("file tag timestamp: %w", err)
	}
	return FileTag{Dev: dev, Ino: ino, BirthNS: ts}, nil
}

// Event is one traced syscall, with entry and exit already aggregated into a
// single record (DIO pairs them in kernel space, §II-B).
type Event struct {
	// Session names the tracing execution this event belongs to, so the
	// backend can store and compare multiple runs (§II-F).
	Session string `json:"session"`

	// Request information.
	Syscall string `json:"syscall"`
	Class   string `json:"class"`
	RetVal  int64  `json:"ret_val"`

	// Arguments (fields that do not apply to a syscall are zero).
	FD       int    `json:"fd,omitempty"`
	ArgPath  string `json:"arg_path,omitempty"`
	ArgPath2 string `json:"arg_path2,omitempty"`
	Count    int    `json:"count,omitempty"`
	ArgOff   int64  `json:"arg_offset,omitempty"`
	Whence   int    `json:"whence,omitempty"`
	Flags    int    `json:"flags,omitempty"`
	Mode     uint32 `json:"mode,omitempty"`
	AttrName string `json:"xattr_name,omitempty"`

	// Process information.
	PID        int    `json:"pid"`
	TID        int    `json:"tid"`
	ProcName   string `json:"proc_name"`
	ThreadName string `json:"thread_name"`

	// Time information (raw kernel nanoseconds).
	TimeEnterNS int64 `json:"time_enter_ns"`
	TimeExitNS  int64 `json:"time_exit_ns"`

	// Enrichment from kernel context (§II-B).
	FileTag    FileTag `json:"file_tag,omitempty"`
	FileType   string  `json:"file_type,omitempty"`
	Offset     int64   `json:"offset"`
	HasOffset  bool    `json:"has_offset"`
	KernelPath string  `json:"kernel_path,omitempty"`

	// FilePath is filled by the backend's file-path correlation algorithm
	// (§II-C); empty until correlation runs or when the tag is unresolvable.
	FilePath string `json:"file_path,omitempty"`
}

// DurationNS returns the syscall's latency in nanoseconds.
func (e *Event) DurationNS() int64 { return e.TimeExitNS - e.TimeEnterNS }

// Failed reports whether the syscall returned an error.
func (e *Event) Failed() bool { return e.RetVal < 0 }

// OffsetOrBlank renders the offset column of the paper's tabular view:
// empty for syscalls without a meaningful offset.
func (e *Event) OffsetOrBlank() string {
	if !e.HasOffset {
		return ""
	}
	return strconv.FormatInt(e.Offset, 10)
}
