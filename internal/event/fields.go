package event

// Canonical field names of the trace-event schema. The store's documents,
// the query DSL, the correlation algorithm, and the visualizations all agree
// on these names; they are defined here (rather than in the store) so that
// typed accessors and the map-based document view cannot drift apart.
const (
	FieldSession    = "session"
	FieldSyscall    = "syscall"
	FieldClass      = "class"
	FieldRetVal     = "ret_val"
	FieldFD         = "fd"
	FieldArgPath    = "arg_path"
	FieldArgPath2   = "arg_path2"
	FieldCount      = "count"
	FieldArgOffset  = "arg_offset"
	FieldWhence     = "whence"
	FieldFlags      = "flags"
	FieldMode       = "mode"
	FieldAttrName   = "xattr_name"
	FieldPID        = "pid"
	FieldTID        = "tid"
	FieldProcName   = "proc_name"
	FieldThreadName = "thread_name"
	FieldTimeEnter  = "time_enter_ns"
	FieldTimeExit   = "time_exit_ns"
	FieldDuration   = "duration_ns"
	FieldFileTag    = "file_tag"
	FieldDevNo      = "dev_no"
	FieldInodeNo    = "inode_no"
	FieldTagTS      = "tag_timestamp"
	FieldFileType   = "file_type"
	FieldOffset     = "offset"
	FieldHasOffset  = "has_offset"
	FieldKernelPath = "kernel_path"
	FieldFilePath   = "file_path"
)

// Fields lists every schema field name, in the order Visit walks them.
func Fields() []string {
	return []string{
		FieldSession, FieldSyscall, FieldClass, FieldRetVal, FieldFD,
		FieldArgPath, FieldArgPath2, FieldCount, FieldArgOffset, FieldWhence,
		FieldFlags, FieldMode, FieldAttrName, FieldPID, FieldTID,
		FieldProcName, FieldThreadName, FieldTimeEnter, FieldTimeExit,
		FieldDuration, FieldFileTag, FieldDevNo, FieldInodeNo, FieldTagTS,
		FieldFileType, FieldOffset, FieldHasOffset, FieldKernelPath,
		FieldFilePath,
	}
}

// StringField returns the named string-typed field. ok is false for
// non-string fields and for absent values, with presence mirroring the
// document view exactly: session, syscall, class, proc_name, and thread_name
// are stored unconditionally by EventToDoc (even when empty) and so are
// always present, while the remaining string fields are present only when
// non-empty, matching the document view's omission of empty values.
func (e *Event) StringField(name string) (string, bool) {
	switch name {
	case FieldSession:
		return e.Session, true
	case FieldSyscall:
		return e.Syscall, true
	case FieldClass:
		return e.Class, true
	case FieldProcName:
		return e.ProcName, true
	case FieldThreadName:
		return e.ThreadName, true
	}
	var s string
	switch name {
	case FieldArgPath:
		s = e.ArgPath
	case FieldArgPath2:
		s = e.ArgPath2
	case FieldAttrName:
		s = e.AttrName
	case FieldFileTag:
		s = e.FileTag.String()
	case FieldFileType:
		s = e.FileType
	case FieldKernelPath:
		s = e.KernelPath
	case FieldFilePath:
		s = e.FilePath
	default:
		return "", false
	}
	return s, s != ""
}

// NumericField returns the named field coerced to float64, without boxing.
// Presence (ok) mirrors the document view exactly: optional numeric fields
// that the document omits when zero (fd, count, arg_offset, whence, flags,
// mode, offset without has_offset, and the tag components without a tag)
// report ok=false, so range queries and aggregations evaluate identically
// through either representation.
func (e *Event) NumericField(name string) (float64, bool) {
	if name == FieldHasOffset {
		// The document view stores a bool; numeric coercion maps it to 0/1.
		if e.HasOffset {
			return 1, true
		}
		return 0, true
	}
	n, ok := e.IntField(name)
	return float64(n), ok
}

// IntField returns the named field as an exact int64 (no float64 round-trip,
// which would corrupt nanosecond timestamps past 2^53). Presence follows the
// document view's omission rules, as in NumericField.
func (e *Event) IntField(name string) (int64, bool) {
	switch name {
	case FieldRetVal:
		return e.RetVal, true
	case FieldPID:
		return int64(e.PID), true
	case FieldTID:
		return int64(e.TID), true
	case FieldTimeEnter:
		return e.TimeEnterNS, true
	case FieldTimeExit:
		return e.TimeExitNS, true
	case FieldDuration:
		return e.DurationNS(), true
	case FieldFD:
		return int64(e.FD), e.FD != 0
	case FieldCount:
		return int64(e.Count), e.Count != 0
	case FieldArgOffset:
		return e.ArgOff, e.ArgOff != 0
	case FieldWhence:
		return int64(e.Whence), e.Whence != 0
	case FieldFlags:
		return int64(e.Flags), e.Flags != 0
	case FieldMode:
		return int64(e.Mode), e.Mode != 0
	case FieldOffset:
		return e.Offset, e.HasOffset
	case FieldDevNo:
		return int64(e.FileTag.Dev), !e.FileTag.Zero()
	case FieldInodeNo:
		return int64(e.FileTag.Ino), !e.FileTag.Zero()
	case FieldTagTS:
		return e.FileTag.BirthNS, !e.FileTag.Zero()
	default:
		return 0, false
	}
}

// Field returns the named field as the document view represents it (string,
// int64, or bool), and whether the field is present under the document
// view's omission rules. Callers that know the field's kind should prefer
// StringField/NumericField/IntField, which avoid boxing.
func (e *Event) Field(name string) (any, bool) {
	switch name {
	case FieldSession, FieldSyscall, FieldClass, FieldArgPath, FieldArgPath2,
		FieldAttrName, FieldProcName, FieldThreadName, FieldFileTag,
		FieldFileType, FieldKernelPath, FieldFilePath:
		s, ok := e.StringField(name)
		if !ok {
			return nil, false
		}
		return s, true
	case FieldHasOffset:
		return e.HasOffset, true
	default:
		n, ok := e.IntField(name)
		if !ok {
			return nil, false
		}
		return n, true
	}
}

// Visit calls fn for every present field in schema order, using the same
// value representation as Field. It lets downstream layers walk an event's
// fields without materializing a map.
func (e *Event) Visit(fn func(name string, value any)) {
	for _, name := range Fields() {
		if v, ok := e.Field(name); ok {
			fn(name, v)
		}
	}
}
