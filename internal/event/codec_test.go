package event

import (
	"errors"
	"strings"
	"testing"
)

// codecSample returns a batch exercising every field class: full enrichment,
// a minimal event, negative numbers, offset-without-tag, and values beyond
// 2^53 that a float64 round-trip would corrupt.
func codecSample() []Event {
	return []Event{
		{
			Session: "s1", Syscall: "pread64", Class: "data", RetVal: 4096,
			FD: 7, ArgPath: "/var/log/app.log", ArgPath2: "", Count: 4096,
			ArgOff: 128, Whence: 0, Flags: 0, Mode: 0, AttrName: "",
			PID: 42, TID: 43, ProcName: "fluent-bit", ThreadName: "flb-pipeline",
			TimeEnterNS: 2156997363734041, TimeExitNS: 2156997363734141,
			FileTag:  FileTag{Dev: 7340032, Ino: 12, BirthNS: 2156997363734000},
			FileType: "regular", Offset: 128, HasOffset: true,
			KernelPath: "/var/log/app.log", FilePath: "/var/log/app.log",
		},
		{Session: "s1", Syscall: "close", Class: "descriptor", RetVal: 0, FD: 7,
			PID: 42, TID: 43, ProcName: "fluent-bit", ThreadName: "flb-pipeline",
			TimeEnterNS: 2156997363735000, TimeExitNS: 2156997363735010},
		{
			Session: "s2", Syscall: "openat", Class: "metadata", RetVal: -2,
			ArgPath: "/etc/missing", Flags: 0x8000, Mode: 0o644,
			PID: 1, TID: 1, ProcName: "db_bench", ThreadName: "main",
			// Timestamps above 2^53 must survive exactly.
			TimeEnterNS: (1 << 60) + 1, TimeExitNS: (1 << 60) + 7,
		},
		{Session: "s2", Syscall: "lseek", Class: "metadata", RetVal: 100,
			FD: 3, Whence: 1, PID: 1, TID: 2, ProcName: "db_bench",
			ThreadName: "worker-1", TimeEnterNS: 10, TimeExitNS: 20,
			Offset: 100, HasOffset: true},
		{Session: "s3", Syscall: "fsetxattr", Class: "extattr", RetVal: 0,
			FD: 9, AttrName: "user.dio", PID: 5, TID: 5,
			ProcName: "p", ThreadName: "t", TimeEnterNS: 1, TimeExitNS: 2},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	in := codecSample()
	frame := EncodeBatch(nil, in)
	if got, want := len(frame), EncodedSize(in); got != want {
		t.Fatalf("EncodedSize = %d, frame is %d bytes", want, got)
	}
	out, err := DecodeBatch(frame, nil)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("event %d mismatch:\n got %+v\nwant %+v", i, out[i], in[i])
		}
	}
}

func TestCodecEmptyBatch(t *testing.T) {
	frame := EncodeBatch(nil, nil)
	out, err := DecodeBatch(frame, nil)
	if err != nil {
		t.Fatalf("DecodeBatch(empty): %v", err)
	}
	if len(out) != 0 {
		t.Fatalf("decoded %d events from empty batch", len(out))
	}
}

func TestCodecAppendsToDst(t *testing.T) {
	in := codecSample()
	frame := EncodeBatch(nil, in)
	prefix := []Event{{Session: "keep-me"}}
	out, err := DecodeBatch(frame, prefix)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(out) != 1+len(in) || out[0].Session != "keep-me" {
		t.Fatalf("dst prefix not preserved: len=%d first=%q", len(out), out[0].Session)
	}
}

// TestCodecOffsetClearedWithoutFlag pins the invariant that a decoded event
// never carries a stale offset when has_offset is false, matching the
// document form where offset is omitted.
func TestCodecOffsetClearedWithoutFlag(t *testing.T) {
	in := []Event{{Session: "s", Syscall: "read", Class: "data",
		PID: 1, TID: 1, ProcName: "p", ThreadName: "t",
		Offset: 999, HasOffset: false}}
	out, err := DecodeBatch(EncodeBatch(nil, in), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Offset != 0 || out[0].HasOffset {
		t.Fatalf("offset leaked without has_offset: %+v", out[0])
	}
}

// TestCodecOverlongString pins the plen/EncodedSize agreement for strings
// beyond the u16 length cap: EncodeBatch truncates them to 65535 bytes, and
// eventEncodedSize must count the truncated length — an untruncated count
// would overstate the per-event payload length, making DecodeBatch slice
// into the next event's bytes and reject the whole frame.
func TestCodecOverlongString(t *testing.T) {
	long := strings.Repeat("p", 0xFFFF+4096)
	in := []Event{
		{Session: "s", Syscall: "openat", Class: "metadata",
			ProcName: "p", ThreadName: "t", ArgPath: long,
			PID: 1, TID: 1, TimeEnterNS: 1, TimeExitNS: 2},
		// A trailing event catches the historical failure mode, where the
		// overstated plen consumed this event's bytes.
		{Session: "s", Syscall: "close", Class: "descriptor",
			ProcName: "p", ThreadName: "t", FD: 3,
			PID: 1, TID: 1, TimeEnterNS: 3, TimeExitNS: 4},
	}
	frame := EncodeBatch(nil, in)
	if got, want := len(frame), EncodedSize(in); got != want {
		t.Fatalf("frame is %d bytes, EncodedSize says %d", got, want)
	}
	out, err := DecodeBatch(frame, nil)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(out) != 2 || out[1].Syscall != "close" {
		t.Fatalf("decoded %d events, second = %+v", len(out), out[min(1, len(out)-1)])
	}
	if out[0].ArgPath != long[:0xFFFF] {
		t.Fatalf("decoded ArgPath len=%d, want truncation to %d", len(out[0].ArgPath), 0xFFFF)
	}
}

// TestCodecCorruptFrames checks that malformed frames produce ErrBadFrame —
// never a panic and never silently-decoded garbage — and that dst is
// returned unchanged.
func TestCodecCorruptFrames(t *testing.T) {
	good := EncodeBatch(nil, codecSample())
	corrupt := map[string][]byte{
		"empty":             {},
		"short header":      good[:5],
		"bad magic":         append([]byte("XIOE"), good[4:]...),
		"bad version":       mutate(good, 4, 0xff),
		"truncated body":    good[:len(good)-3],
		"trailing bytes":    append(append([]byte(nil), good...), 0xaa),
		"huge count":        mutate(mutate(mutate(mutate(good, 5, 0xff), 6, 0xff), 7, 0xff), 8, 0xff),
		"zero event length": mutate(mutate(mutate(mutate(good, 9, 0), 10, 0), 11, 0), 12, 0),
	}
	for name, frame := range corrupt {
		dst := []Event{{Session: "sentinel"}}
		out, err := DecodeBatch(frame, dst)
		if err == nil {
			t.Errorf("%s: decoded without error", name)
			continue
		}
		if !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: error %v is not ErrBadFrame", name, err)
		}
		if len(out) != 1 || out[0].Session != "sentinel" {
			t.Errorf("%s: dst modified on error: %+v", name, out)
		}
	}
}

func mutate(b []byte, i int, v byte) []byte {
	c := append([]byte(nil), b...)
	c[i] = v
	return c
}

// TestCodecInterning verifies the decoder deduplicates repeated strings so a
// large batch shares one allocation per distinct name.
func TestCodecInterning(t *testing.T) {
	in := make([]Event, 64)
	for i := range in {
		in[i] = Event{Session: "shared-session", Syscall: "read", Class: "data",
			ProcName: "proc", ThreadName: "thread", PID: 1, TID: 1}
	}
	out, err := DecodeBatch(EncodeBatch(nil, in), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(out); i++ {
		// Interned strings share backing storage; comparing data pointers
		// via the == fast path is not observable, so assert equality and
		// rely on the allocation test below for the sharing property.
		if out[i].Session != out[0].Session || out[i].Syscall != out[0].Syscall {
			t.Fatalf("event %d strings diverge", i)
		}
	}
}

// TestDecodeAllocsPerEvent pins the decode path's allocation budget: with
// interning, decoding a batch of events with repeated strings must stay
// under 2 allocations per event amortized.
func TestDecodeAllocsPerEvent(t *testing.T) {
	in := make([]Event, 512)
	for i := range in {
		in[i] = Event{Session: "s", Syscall: "read", Class: "data",
			ProcName: "proc", ThreadName: "thread", PID: 1, TID: int(uint16(i)),
			TimeEnterNS: int64(i), TimeExitNS: int64(i) + 5, RetVal: 4096}
	}
	frame := EncodeBatch(nil, in)
	dst := make([]Event, 0, len(in))
	allocs := testing.AllocsPerRun(10, func() {
		out, err := DecodeBatch(frame, dst[:0])
		if err != nil || len(out) != len(in) {
			t.Fatalf("decode: %v (%d events)", err, len(out))
		}
	})
	if perEvent := allocs / float64(len(in)); perEvent > 2 {
		t.Fatalf("decode allocates %.2f allocs/event (total %.0f), budget is 2", perEvent, allocs)
	}
}

// FuzzEventCodec feeds arbitrary bytes to DecodeBatch (must error, never
// panic, on garbage) and checks that every frame EncodeBatch produces from
// decoded events round-trips exactly.
func FuzzEventCodec(f *testing.F) {
	f.Add(EncodeBatch(nil, codecSample()))
	f.Add(EncodeBatch(nil, nil))
	f.Add([]byte("DIOE"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := DecodeBatch(data, nil)
		if err != nil {
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("decode error %v is not ErrBadFrame", err)
			}
			return
		}
		// Whatever decoded must re-encode and decode to the same events.
		frame := EncodeBatch(nil, out)
		back, err := DecodeBatch(frame, nil)
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame failed: %v", err)
		}
		if len(back) != len(out) {
			t.Fatalf("re-decode count %d, want %d", len(back), len(out))
		}
		for i := range out {
			if back[i] != out[i] {
				t.Fatalf("event %d not stable across re-encode:\n got %+v\nwant %+v", i, back[i], out[i])
			}
		}
	})
}
