package event

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ContentTypeBinaryV1 is the HTTP media type of the version-1 binary event
// frame produced by EncodeBatch. The store client sends bulk requests under
// this content type and falls back to the NDJSON document path when the
// server does not speak it (see DESIGN.md §10).
const ContentTypeBinaryV1 = "application/x-dio-events.v1"

// CodecVersion is the wire-format version EncodeBatch emits.
const CodecVersion = 1

// codecMagic prefixes every frame so a decoder can reject arbitrary bytes
// (an NDJSON payload routed here by mistake, a truncated proxy response)
// before trusting any length field.
var codecMagic = [4]byte{'D', 'I', 'O', 'E'}

// Frame layout (all integers little-endian):
//
//	[4]  magic "DIOE"
//	[1]  version (1)
//	[4]  u32 event count
//	per event:
//	  [4] u32 payload length (fixed section + strings)
//	  payload:
//	    fixed: ret_val i64, arg_offset i64, time_enter i64, time_exit i64,
//	           offset i64, dev u64, ino u64, birth i64,
//	           pid i32, tid i32, fd i32, count i32, whence i32, flags i32,
//	           mode u32, aux u8 (bit 0: has_offset)
//	    strings, each u16 length + bytes: session, syscall, class, proc_name,
//	           thread_name, arg_path, arg_path2, xattr_name, file_type,
//	           kernel_path, file_path
//
// The per-event length prefix makes truncation detectable without decoding
// and lets a future version append fields that a v1 decoder would reject by
// version, never by guessing.

const (
	codecHeaderLen     = 4 + 1 + 4
	codecFixedLen      = 8*8 + 6*4 + 4 + 1
	codecStringCount   = 11
	codecMinEventLen   = codecFixedLen + 2*codecStringCount
	codecAuxHasOffset  = 1 << 0
	codecMaxFrameCount = 1 << 26 // sanity bound on the count field
	// codecMaxStringLen is the largest string the u16 length prefix can
	// carry; EncodeBatch truncates longer values and eventEncodedSize must
	// apply the same cap so plen, EncodedSize, and the written bytes agree.
	codecMaxStringLen = 0xFFFF
)

// ErrBadFrame reports a frame DecodeBatch could not parse: wrong magic,
// unsupported version, a truncated or over-long payload, or trailing bytes.
var ErrBadFrame = errors.New("event: bad binary frame")

// EncodedSize returns the exact frame size for events, letting callers
// pre-size buffers from batch stats instead of growing them on the fly.
func EncodedSize(events []Event) int {
	n := codecHeaderLen
	for i := range events {
		n += 4 + eventEncodedSize(&events[i])
	}
	return n
}

func eventEncodedSize(e *Event) int {
	n := codecMinEventLen
	for _, s := range eventStrings(e) {
		n += min(len(s), codecMaxStringLen)
	}
	return n
}

// eventStrings enumerates the event's string fields in wire order; the
// encoder and the size computation share it so they cannot disagree.
func eventStrings(e *Event) [codecStringCount]string {
	return [codecStringCount]string{
		e.Session, e.Syscall, e.Class, e.ProcName, e.ThreadName,
		e.ArgPath, e.ArgPath2, e.AttrName, e.FileType, e.KernelPath,
		e.FilePath,
	}
}

// EncodeBatch appends the version-1 binary frame for events to dst and
// returns the extended slice. Callers recycle dst across batches, so the
// steady-state encode path allocates nothing once the buffer has grown to
// the working batch size.
func EncodeBatch(dst []byte, events []Event) []byte {
	need := EncodedSize(events)
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	le := binary.LittleEndian
	dst = append(dst, codecMagic[:]...)
	dst = append(dst, CodecVersion)
	dst = le.AppendUint32(dst, uint32(len(events)))
	for i := range events {
		e := &events[i]
		dst = le.AppendUint32(dst, uint32(eventEncodedSize(e)))
		dst = le.AppendUint64(dst, uint64(e.RetVal))
		dst = le.AppendUint64(dst, uint64(e.ArgOff))
		dst = le.AppendUint64(dst, uint64(e.TimeEnterNS))
		dst = le.AppendUint64(dst, uint64(e.TimeExitNS))
		dst = le.AppendUint64(dst, uint64(e.Offset))
		dst = le.AppendUint64(dst, e.FileTag.Dev)
		dst = le.AppendUint64(dst, e.FileTag.Ino)
		dst = le.AppendUint64(dst, uint64(e.FileTag.BirthNS))
		dst = le.AppendUint32(dst, uint32(int32(e.PID)))
		dst = le.AppendUint32(dst, uint32(int32(e.TID)))
		dst = le.AppendUint32(dst, uint32(int32(e.FD)))
		dst = le.AppendUint32(dst, uint32(int32(e.Count)))
		dst = le.AppendUint32(dst, uint32(int32(e.Whence)))
		dst = le.AppendUint32(dst, uint32(int32(e.Flags)))
		dst = le.AppendUint32(dst, e.Mode)
		var aux byte
		if e.HasOffset {
			aux |= codecAuxHasOffset
		}
		dst = append(dst, aux)
		for _, s := range eventStrings(e) {
			if len(s) > codecMaxStringLen {
				s = s[:codecMaxStringLen]
			}
			dst = le.AppendUint16(dst, uint16(len(s)))
			dst = append(dst, s...)
		}
	}
	return dst
}

// decoder carries per-frame decode state: an interning table that collapses
// the heavily repeated short strings (syscall names, classes, session and
// process names) into one allocation each, which is where the typed path's
// per-event allocation budget is won.
type decoder struct {
	intern map[string]string
}

const internMaxLen = 64

func (d *decoder) str(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) <= internMaxLen {
		// map[string]string lookup keyed by string(b) does not allocate.
		if s, ok := d.intern[string(b)]; ok {
			return s
		}
		s := string(b)
		if d.intern == nil {
			d.intern = make(map[string]string, 16)
		}
		d.intern[s] = s
		return s
	}
	return string(b)
}

// DecodeBatch parses a frame produced by EncodeBatch, appending the decoded
// events to dst (which may be nil) and returning the extended slice. It
// validates the magic, version, and every length field: truncated or corrupt
// frames return ErrBadFrame-wrapped errors and never panic, and dst's
// original contents are always intact on error.
func DecodeBatch(data []byte, dst []Event) ([]Event, error) {
	le := binary.LittleEndian
	if len(data) < codecHeaderLen {
		return dst, fmt.Errorf("%w: short header (%d bytes)", ErrBadFrame, len(data))
	}
	if [4]byte(data[:4]) != codecMagic {
		return dst, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	if v := data[4]; v != CodecVersion {
		return dst, fmt.Errorf("%w: unsupported version %d", ErrBadFrame, v)
	}
	count := int(le.Uint32(data[5:]))
	if count < 0 || count > codecMaxFrameCount {
		return dst, fmt.Errorf("%w: implausible event count %d", ErrBadFrame, count)
	}
	o := codecHeaderLen
	base := len(dst)
	var d decoder
	for i := 0; i < count; i++ {
		if o+4 > len(data) {
			return dst[:base], fmt.Errorf("%w: truncated at event %d", ErrBadFrame, i)
		}
		plen := int(le.Uint32(data[o:]))
		o += 4
		if plen < codecMinEventLen || o+plen > len(data) {
			return dst[:base], fmt.Errorf("%w: bad payload length %d at event %d", ErrBadFrame, plen, i)
		}
		p := data[o : o+plen]
		o += plen
		var e Event
		e.RetVal = int64(le.Uint64(p[0:]))
		e.ArgOff = int64(le.Uint64(p[8:]))
		e.TimeEnterNS = int64(le.Uint64(p[16:]))
		e.TimeExitNS = int64(le.Uint64(p[24:]))
		e.Offset = int64(le.Uint64(p[32:]))
		e.FileTag.Dev = le.Uint64(p[40:])
		e.FileTag.Ino = le.Uint64(p[48:])
		e.FileTag.BirthNS = int64(le.Uint64(p[56:]))
		e.PID = int(int32(le.Uint32(p[64:])))
		e.TID = int(int32(le.Uint32(p[68:])))
		e.FD = int(int32(le.Uint32(p[72:])))
		e.Count = int(int32(le.Uint32(p[76:])))
		e.Whence = int(int32(le.Uint32(p[80:])))
		e.Flags = int(int32(le.Uint32(p[84:])))
		e.Mode = le.Uint32(p[88:])
		aux := p[92]
		e.HasOffset = aux&codecAuxHasOffset != 0
		if !e.HasOffset {
			e.Offset = 0
		}
		so := codecFixedLen
		var strs [codecStringCount]string
		for j := range strs {
			if so+2 > len(p) {
				return dst[:base], fmt.Errorf("%w: truncated string %d at event %d", ErrBadFrame, j, i)
			}
			n := int(le.Uint16(p[so:]))
			so += 2
			if so+n > len(p) {
				return dst[:base], fmt.Errorf("%w: string %d overruns payload at event %d", ErrBadFrame, j, i)
			}
			strs[j] = d.str(p[so : so+n])
			so += n
		}
		if so != len(p) {
			return dst[:base], fmt.Errorf("%w: %d trailing payload bytes at event %d", ErrBadFrame, len(p)-so, i)
		}
		e.Session, e.Syscall, e.Class = strs[0], strs[1], strs[2]
		e.ProcName, e.ThreadName = strs[3], strs[4]
		e.ArgPath, e.ArgPath2, e.AttrName = strs[5], strs[6], strs[7]
		e.FileType, e.KernelPath, e.FilePath = strs[8], strs[9], strs[10]
		dst = append(dst, e)
	}
	if o != len(data) {
		return dst[:base], fmt.Errorf("%w: %d trailing bytes after %d events", ErrBadFrame, len(data)-o, count)
	}
	return dst, nil
}
