// Package integration exercises the full paper deployment (§II-F): a
// standalone backend server (the Elasticsearch role), tracers on "other
// machines" shipping events over HTTP, correlation on the server, and
// visualizer queries from a third party — all composed exactly like the
// cmd/diod, cmd/dio, and cmd/dioviz binaries.
package integration

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/dsrhaslab/dio-go/internal/apps/fluentbit"
	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/comparators"
	"github.com/dsrhaslab/dio-go/internal/core"
	"github.com/dsrhaslab/dio-go/internal/diagnose"
	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/replay"
	"github.com/dsrhaslab/dio-go/internal/store"
	"github.com/dsrhaslab/dio-go/internal/viz"
)

func TestFullPipelineOverHTTP(t *testing.T) {
	// The "analysis server": one store behind HTTP, as cmd/diod runs it.
	st := store.New()
	srv := httptest.NewServer(store.NewServer(st))
	defer srv.Close()

	// "Machine 1": trace the Fluent Bit scenario, shipping remotely.
	k1 := kernel.New(kernel.Config{Clock: clock.NewVirtualTicking(kernel.BaseTimestampNS, time.Microsecond)})
	tr1, err := core.NewTracer(core.Config{
		SessionName:   "m1-fluentbit",
		Index:         "dio-events",
		Backend:       store.NewClient(srv.URL),
		AutoCorrelate: true,
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr1.Start(k1); err != nil {
		t.Fatal(err)
	}
	if _, err := fluentbit.RunScenario(k1, "/var/log", fluentbit.VersionBuggy); err != nil {
		t.Fatal(err)
	}
	stats1, err := tr1.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if stats1.Shipped == 0 || stats1.ShipErrors != 0 {
		t.Fatalf("machine 1 stats = %+v", stats1)
	}

	// "Machine 2": a different workload into the same backend.
	k2 := kernel.New(kernel.Config{Clock: clock.NewVirtualTicking(0, time.Microsecond)})
	tr2, err := core.NewTracer(core.Config{
		SessionName:   "m2-synthetic",
		Index:         "dio-events",
		Backend:       store.NewClient(srv.URL),
		AutoCorrelate: true,
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.Start(k2); err != nil {
		t.Fatal(err)
	}
	task := k2.NewProcess("synthetic").NewTask("synthetic")
	if err := comparators.RunWorkload(k2, task, comparators.WorkloadConfig{}, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := tr2.Stop(); err != nil {
		t.Fatal(err)
	}

	// The "visualizer machine": query through a fresh HTTP client, as
	// cmd/dioviz does.
	client := store.NewClient(srv.URL)

	names, err := client.Indices()
	if err != nil || len(names) != 1 || names[0] != "dio-events" {
		t.Fatalf("indices = (%v, %v)", names, err)
	}

	table, err := viz.AccessPatternTable(client, "dio-events", "m1-fluentbit")
	if err != nil {
		t.Fatal(err)
	}
	out := table.String()
	if !strings.Contains(out, "fluent-bit") || !strings.Contains(out, "lseek") {
		t.Fatalf("fig2-style table over HTTP missing content:\n%s", out)
	}

	hist, err := viz.SyscallHistogram(client, "dio-events", "m2-synthetic")
	if err != nil || len(hist.Labels) == 0 {
		t.Fatalf("histogram = (%v, %v)", hist, err)
	}

	// Cross-session comparison through HTTP.
	deltas, err := diagnose.CompareSessions(context.Background(), client, "dio-events", "m1-fluentbit", "m2-synthetic")
	if err != nil {
		t.Fatal(err)
	}
	foundFsync := false
	for _, d := range deltas {
		if d.Syscall == "fsync" && d.CountA == 0 && d.CountB > 0 {
			foundFsync = true
		}
	}
	if !foundFsync {
		t.Fatalf("comparison did not separate the workloads: %+v", deltas)
	}

	// Offset-pattern analysis over HTTP (machine 2's synthetic files were
	// correlated server-side at tracer Stop).
	p, err := diagnose.FileOffsetPattern(context.Background(), client, "dio-events", "m2-synthetic", "/data/f000.dat")
	if err != nil {
		t.Fatal(err)
	}
	if p.Writes == 0 || p.Classification() == "no data I/O" {
		t.Fatalf("offset pattern = %+v", p)
	}

	// Both sessions' tagged events fully path-correlated on the server.
	unresolved, err := client.Count(context.Background(), "dio-events", store.Must(
		store.Exists(store.FieldFileTag),
		store.MustNot(store.Exists(store.FieldFilePath)),
	))
	if err != nil {
		t.Fatal(err)
	}
	if unresolved != 0 {
		t.Fatalf("%d events left unresolved after server-side correlation", unresolved)
	}
}

func TestMultipleTracersSameKernelDifferentBackends(t *testing.T) {
	// DIO and a Sysdig-style tracer observing the same kernel at once, as
	// in the §III-D comparison runs.
	k := kernel.New(kernel.Config{Clock: clock.NewVirtualTicking(0, time.Microsecond)})
	k.MkdirAll("/data")

	backend := store.New()
	dioTracer, _ := core.NewTracer(core.Config{
		SessionName:   "both-dio",
		Index:         "events",
		Backend:       backend,
		FlushInterval: time.Millisecond,
	})
	dioTracer.Start(k)
	sysdig := comparators.NewSysdigTracer(comparators.SysdigConfig{Clock: k.Clock(), RingBytes: 1 << 20})
	sysdig.Attach(k)

	task := k.NewProcess("app").NewTask("app")
	fd, _ := task.Openat(kernel.AtFDCWD, "/data/x", kernel.OWronly|kernel.OCreat, 0o644)
	task.Write(fd, []byte("hello"))
	task.Close(fd)

	sysdig.Detach()
	sysdig.Consume()
	dioStats, err := dioTracer.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if dioStats.Shipped != 3 {
		t.Fatalf("dio shipped = %d", dioStats.Shipped)
	}
	if got := sysdig.Stats().Consumed; got != 3 {
		t.Fatalf("sysdig consumed = %d", got)
	}
}

func TestVisualizerViewsOverHTTP(t *testing.T) {
	st := store.New()
	server := store.NewServer(st)
	diagnose.Install(server) // as cmd/diod wires it
	srv := httptest.NewServer(server)
	defer srv.Close()

	k := kernel.New(kernel.Config{Clock: clock.NewVirtualTicking(0, time.Microsecond)})
	tr, _ := core.NewTracer(core.Config{
		SessionName:   "views",
		Index:         "dio-events",
		Backend:       store.NewClient(srv.URL),
		AutoCorrelate: true,
		FlushInterval: time.Millisecond,
	})
	tr.Start(k)
	if _, err := fluentbit.RunScenario(k, "/var/log", fluentbit.VersionBuggy); err != nil {
		t.Fatal(err)
	}
	tr.Stop()

	client := store.NewClient(srv.URL)

	// HTML dashboard renders through the remote backend.
	var html strings.Builder
	if err := viz.HTMLDashboard(&html, client, "dio-events", "views", int64(time.Millisecond)); err != nil {
		t.Fatalf("html dashboard: %v", err)
	}
	if !strings.Contains(html.String(), "<svg") || !strings.Contains(html.String(), "fluent-bit") {
		t.Fatal("html dashboard incomplete")
	}

	// Heatmap via the remote timeline.
	ts, err := viz.SyscallTimeline(client, "dio-events", "views", int64(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	hm := viz.HeatmapFromTimeSeries(ts)
	if len(hm.RowLabels) == 0 {
		t.Fatal("empty heatmap")
	}

	// Automated diagnosis through HTTP: the engine runs server-side behind
	// the /v1/{index}/_diagnose op, as cmd/dioviz's remote mode uses it.
	diag := diagnose.NewClient(client)
	rep, err := diag.Diagnose(context.Background(), "dio-events", "views")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Critical() {
		t.Fatalf("remote diagnosis missed the bug: %s", rep)
	}

	// The DFG endpoint serves the same session's follows-graph.
	g, err := diag.DFG(context.Background(), "dio-events", "views")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Procs) == 0 {
		t.Fatal("remote DFG is empty")
	}

	// Trace replay through HTTP.
	k2 := kernel.New(kernel.Config{Clock: clock.NewVirtualTicking(0, time.Microsecond)})
	res, err := replay.Session(client, "dio-events", "views", k2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replayed == 0 || len(res.Mismatches) != 0 {
		t.Fatalf("remote replay = %+v", res)
	}
}
