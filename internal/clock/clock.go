// Package clock provides the time sources used by the simulated kernel and
// the tracing pipeline.
//
// Two implementations are provided:
//
//   - Real: wall-clock time, used when workloads run as actual goroutines and
//     contention effects must emerge from real scheduling (Figures 3 and 4).
//   - Virtual: a logical nanosecond counter advanced explicitly, used by the
//     analytic overhead model (Table II) and by deterministic unit tests.
//
// All kernel timestamps are nanoseconds since an arbitrary epoch, mirroring
// the raw monotonic nanosecond timestamps that eBPF programs obtain from
// bpf_ktime_get_ns.
package clock

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Clock is a nanosecond-resolution time source.
type Clock interface {
	// NowNS returns the current time in nanoseconds since the clock's epoch.
	NowNS() int64
	// Sleep blocks the caller for d. On a virtual clock, Sleep advances the
	// clock instead of blocking in real time.
	Sleep(d time.Duration)
}

// Real is a Clock backed by the process monotonic clock.
type Real struct {
	epoch time.Time
	// baseNS offsets reported timestamps so that traces resemble the raw
	// kernel timestamps shown in the paper's figures.
	baseNS int64
}

var _ Clock = (*Real)(nil)

// NewReal returns a wall-clock Clock whose reported nanoseconds start at
// baseNS.
func NewReal(baseNS int64) *Real {
	return &Real{epoch: time.Now(), baseNS: baseNS}
}

// NowNS implements Clock.
func (r *Real) NowNS() int64 {
	return r.baseNS + time.Since(r.epoch).Nanoseconds()
}

// coarseSleep is the granularity below which time.Sleep cannot be trusted
// on coarse-timer hosts (VMs frequently round sleeps up to ≥1ms).
const coarseSleep = 2 * time.Millisecond

// Sleep implements Clock with sub-millisecond precision: waits longer than
// the host timer granularity use time.Sleep for the bulk and then yield-spin
// to the deadline, so that microsecond-scale simulated device times are
// honored even on hosts whose timers round sleeps up to a millisecond.
func (r *Real) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	if d > 2*coarseSleep {
		time.Sleep(d - coarseSleep)
	}
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// Virtual is a Clock whose time only moves when explicitly advanced or slept.
// It is safe for concurrent use; Sleep on a Virtual clock advances the clock
// by d, which models "this operation took d" in simulations that have no real
// concurrency (single-threaded replays and analytic cost models).
type Virtual struct {
	now  atomic.Int64
	tick int64
}

var _ Clock = (*Virtual)(nil)

// NewVirtual returns a virtual clock starting at baseNS.
func NewVirtual(baseNS int64) *Virtual {
	v := &Virtual{}
	v.now.Store(baseNS)
	return v
}

// NewVirtualTicking returns a virtual clock that additionally advances by
// tick on every NowNS call, guaranteeing strictly increasing timestamps in
// single-threaded simulations (so that, e.g., recycled inodes get distinct
// birth timestamps).
func NewVirtualTicking(baseNS int64, tick time.Duration) *Virtual {
	v := NewVirtual(baseNS)
	v.tick = tick.Nanoseconds()
	return v
}

// NowNS implements Clock. On a ticking clock it returns the pre-tick value,
// so the first observation equals the base timestamp.
func (v *Virtual) NowNS() int64 {
	if v.tick > 0 {
		return v.now.Add(v.tick) - v.tick
	}
	return v.now.Load()
}

// Sleep advances the clock by d without blocking.
func (v *Virtual) Sleep(d time.Duration) {
	if d > 0 {
		v.now.Add(d.Nanoseconds())
	}
}

// Advance moves the clock forward by d and returns the new time.
func (v *Virtual) Advance(d time.Duration) int64 {
	return v.now.Add(d.Nanoseconds())
}
