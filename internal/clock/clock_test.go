package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealMonotonic(t *testing.T) {
	c := NewReal(1_000)
	a := c.NowNS()
	if a < 1_000 {
		t.Fatalf("NowNS() = %d, want >= base 1000", a)
	}
	c.Sleep(time.Millisecond)
	b := c.NowNS()
	if b <= a {
		t.Fatalf("clock did not advance: before=%d after=%d", a, b)
	}
}

func TestRealBaseOffset(t *testing.T) {
	base := int64(1_679_308_382_000_000_000)
	c := NewReal(base)
	if got := c.NowNS(); got < base {
		t.Fatalf("NowNS() = %d, want >= %d", got, base)
	}
}

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual(100)
	if got := v.NowNS(); got != 100 {
		t.Fatalf("NowNS() = %d, want 100", got)
	}
	v.Advance(50 * time.Nanosecond)
	if got := v.NowNS(); got != 150 {
		t.Fatalf("NowNS() = %d, want 150", got)
	}
	v.Sleep(25 * time.Nanosecond)
	if got := v.NowNS(); got != 175 {
		t.Fatalf("NowNS() = %d, want 175", got)
	}
}

func TestVirtualSleepNegative(t *testing.T) {
	v := NewVirtual(10)
	v.Sleep(-time.Second)
	if got := v.NowNS(); got != 10 {
		t.Fatalf("negative sleep moved clock: %d", got)
	}
}

func TestVirtualConcurrentAdvance(t *testing.T) {
	v := NewVirtual(0)
	const (
		workers = 8
		perW    = 1000
	)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perW; j++ {
				v.Advance(time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got := v.NowNS(); got != workers*perW {
		t.Fatalf("NowNS() = %d, want %d", got, workers*perW)
	}
}
