// Package replay re-executes a traced session against a fresh simulated
// kernel — the capability Re-Animator provides on real systems (Table III).
// It demonstrates that DIO's events carry everything needed to reproduce an
// application's storage behaviour: syscall types, arguments, descriptor
// lifetimes, offsets, and per-thread ordering.
//
// Data payloads are not recorded in traces (only sizes), so replay writes
// synthetic bytes of the original lengths; return values are checked
// against the trace, and divergences are reported.
package replay

import (
	"context"

	"fmt"

	"github.com/dsrhaslab/dio-go/internal/event"
	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/store"
)

// Result summarizes a replay.
type Result struct {
	// Replayed counts re-executed events.
	Replayed int
	// Skipped counts events that could not be replayed (descriptor opened
	// before the trace started, unsupported syscall, missing path).
	Skipped int
	// Mismatches lists events whose replayed return value differed from
	// the traced one (bounded at 32 entries).
	Mismatches []string
}

// fdKey maps original (pid, fd) pairs to replayed descriptors.
type fdKey struct {
	pid int
	fd  int
}

// replayer carries the replay state.
type replayer struct {
	k     *kernel.Kernel
	procs map[int]*kernel.Process // original pid -> replay process
	tasks map[int]*kernel.Task    // original tid -> replay task
	fds   map[fdKey]int           // original (pid, fd) -> replay fd
	res   Result
}

// Session replays every event of the session (ordered by entry timestamp)
// against k. The backend may be in-process or remote.
func Session(b store.Backend, index, session string, k *kernel.Kernel) (Result, error) {
	resp, err := store.SearchEvents(context.Background(), b, index, store.SearchRequest{
		Query: store.Term(store.FieldSession, session),
		Sort:  []store.SortField{{Field: store.FieldTimeEnter}},
	})
	if err != nil {
		return Result{}, fmt.Errorf("replay query: %w", err)
	}
	r := &replayer{
		k:     k,
		procs: make(map[int]*kernel.Process),
		tasks: make(map[int]*kernel.Task),
		fds:   make(map[fdKey]int),
	}
	for i := range resp.Hits {
		r.replayEvent(&resp.Hits[i])
	}
	return r.res, nil
}

func (r *replayer) task(pid int, tid int, procName, threadName string) *kernel.Task {
	if t, ok := r.tasks[tid]; ok {
		return t
	}
	p, ok := r.procs[pid]
	if !ok {
		p = r.k.NewProcess(procName)
		r.procs[pid] = p
	}
	t := p.NewTask(threadName)
	r.tasks[tid] = t
	return t
}

func (r *replayer) mismatch(e *event.Event, got int64) {
	if len(r.res.Mismatches) >= 32 {
		return
	}
	r.res.Mismatches = append(r.res.Mismatches, fmt.Sprintf(
		"%s at t=%d: traced ret %d, replayed ret %d", e.Syscall, e.TimeEnterNS, e.RetVal, got))
}

func (r *replayer) replayEvent(e *event.Event) {
	t := r.task(e.PID, e.TID, e.ProcName, e.ThreadName)
	key := fdKey{e.PID, e.FD}
	lookupFD := func() (int, bool) {
		fd, ok := r.fds[key]
		return fd, ok
	}

	var (
		got     int64
		skipped bool
	)
	switch e.Syscall {
	case "open", "openat", "creat":
		// Ensure the parent directory exists in the replay environment.
		if i := lastSlash(e.ArgPath); i > 0 {
			r.k.MkdirAll(e.ArgPath[:i])
		}
		flags := kernel.OpenFlags(e.Flags)
		if e.Syscall == "creat" {
			flags = kernel.OWronly | kernel.OCreat | kernel.OTrunc
		}
		fd, err := t.Openat(kernel.AtFDCWD, e.ArgPath, flags, e.Mode)
		got = kernel.Ret(int64(fd), err)
		if err == nil && e.RetVal >= 0 {
			r.fds[fdKey{e.PID, int(e.RetVal)}] = fd
		}
	case "close":
		fd, ok := lookupFD()
		if !ok {
			skipped = true
			break
		}
		err := t.Close(fd)
		got = kernel.Ret(0, err)
		delete(r.fds, key)
	case "read", "readv":
		fd, ok := lookupFD()
		if !ok {
			skipped = true
			break
		}
		n, err := t.Read(fd, make([]byte, e.Count))
		got = kernel.Ret(int64(n), err)
	case "pread64":
		fd, ok := lookupFD()
		if !ok {
			skipped = true
			break
		}
		n, err := t.Pread64(fd, make([]byte, e.Count), e.ArgOff)
		got = kernel.Ret(int64(n), err)
	case "write", "writev":
		fd, ok := lookupFD()
		if !ok {
			skipped = true
			break
		}
		n, err := t.Write(fd, make([]byte, e.Count))
		got = kernel.Ret(int64(n), err)
	case "pwrite64":
		fd, ok := lookupFD()
		if !ok {
			skipped = true
			break
		}
		n, err := t.Pwrite64(fd, make([]byte, e.Count), e.ArgOff)
		got = kernel.Ret(int64(n), err)
	case "lseek":
		fd, ok := lookupFD()
		if !ok {
			skipped = true
			break
		}
		off, err := t.Lseek(fd, e.ArgOff, e.Whence)
		got = kernel.Ret(off, err)
	case "fsync":
		fd, ok := lookupFD()
		if !ok {
			skipped = true
			break
		}
		got = kernel.Ret(0, t.Fsync(fd))
	case "fdatasync":
		fd, ok := lookupFD()
		if !ok {
			skipped = true
			break
		}
		got = kernel.Ret(0, t.Fdatasync(fd))
	case "ftruncate":
		fd, ok := lookupFD()
		if !ok {
			skipped = true
			break
		}
		got = kernel.Ret(0, t.Ftruncate(fd, e.ArgOff))
	case "stat":
		_, err := t.Stat(e.ArgPath)
		got = kernel.Ret(0, err)
	case "lstat":
		_, err := t.Lstat(e.ArgPath)
		got = kernel.Ret(0, err)
	case "unlink":
		got = kernel.Ret(0, t.Unlink(e.ArgPath))
	case "unlinkat":
		got = kernel.Ret(0, t.Unlinkat(kernel.AtFDCWD, e.ArgPath, false))
	case "mkdir":
		got = kernel.Ret(0, t.Mkdir(e.ArgPath, e.Mode))
	case "mkdirat":
		got = kernel.Ret(0, t.Mkdirat(kernel.AtFDCWD, e.ArgPath, e.Mode))
	case "rmdir":
		got = kernel.Ret(0, t.Rmdir(e.ArgPath))
	case "rename":
		got = kernel.Ret(0, t.Rename(e.ArgPath, e.ArgPath2))
	case "renameat":
		got = kernel.Ret(0, t.Renameat(kernel.AtFDCWD, e.ArgPath, kernel.AtFDCWD, e.ArgPath2))
	case "renameat2":
		got = kernel.Ret(0, t.Renameat2(kernel.AtFDCWD, e.ArgPath, kernel.AtFDCWD, e.ArgPath2, 0))
	case "truncate":
		got = kernel.Ret(0, t.Truncate(e.ArgPath, e.ArgOff))
	case "setxattr":
		got = kernel.Ret(0, t.Setxattr(e.ArgPath, e.AttrName, make([]byte, e.Count)))
	case "getxattr":
		v, err := t.Getxattr(e.ArgPath, e.AttrName)
		got = kernel.Ret(int64(len(v)), err)
	default:
		skipped = true
	}

	if skipped {
		r.res.Skipped++
		return
	}
	r.res.Replayed++
	if got != e.RetVal {
		r.mismatch(e, got)
	}
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}
