package replay

import (
	"testing"
	"time"

	"github.com/dsrhaslab/dio-go/internal/apps/fluentbit"
	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/core"
	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/store"
)

func freshKernel() *kernel.Kernel {
	return kernel.New(kernel.Config{Clock: clock.NewVirtualTicking(0, time.Microsecond)})
}

// traceWorkload traces fn and returns the backend and session.
func traceWorkload(t *testing.T, fn func(k *kernel.Kernel)) (*store.Store, string) {
	t.Helper()
	k := freshKernel()
	backend := store.New()
	tracer, err := core.NewTracer(core.Config{
		SessionName:   "to-replay",
		Index:         "events",
		Backend:       backend,
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tracer.Start(k); err != nil {
		t.Fatal(err)
	}
	fn(k)
	if _, err := tracer.Stop(); err != nil {
		t.Fatal(err)
	}
	return backend, "to-replay"
}

func TestReplayBasicLifecycle(t *testing.T) {
	backend, session := traceWorkload(t, func(k *kernel.Kernel) {
		k.MkdirAll("/w")
		task := k.NewProcess("app").NewTask("app")
		fd, _ := task.Openat(kernel.AtFDCWD, "/w/file", kernel.ORdwr|kernel.OCreat, 0o644)
		task.Write(fd, []byte("0123456789"))
		task.Lseek(fd, 0, kernel.SeekSet)
		task.Read(fd, make([]byte, 10))
		task.Fsync(fd)
		task.Ftruncate(fd, 4)
		task.Close(fd)
		task.Stat("/w/file")
		task.Rename("/w/file", "/w/file2")
		task.Unlink("/w/file2")
	})

	k2 := freshKernel()
	res, err := Session(backend, "events", session, k2)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res.Skipped != 0 {
		t.Fatalf("skipped = %d, want 0", res.Skipped)
	}
	if res.Replayed != 10 {
		t.Fatalf("replayed = %d, want 10", res.Replayed)
	}
	if len(res.Mismatches) != 0 {
		t.Fatalf("mismatches: %v", res.Mismatches)
	}
	// The replayed filesystem reflects the traced operations: file2 was
	// unlinked, so nothing remains.
	if _, err := k2.ReadFileContents("/w/file2"); err != kernel.ENOENT {
		t.Fatalf("replayed fs state: %v", err)
	}
}

func TestReplayFluentBitScenarioReproducesDataLossSignature(t *testing.T) {
	// Trace the buggy Fluent Bit run, then replay it on a fresh kernel:
	// the replay must reproduce the same return values — including the
	// read that returns 0 at the stale offset — with zero mismatches.
	k := freshKernel()
	backend := store.New()
	tracer, _ := core.NewTracer(core.Config{
		SessionName:   "flb",
		Index:         "events",
		Backend:       backend,
		FlushInterval: time.Millisecond,
	})
	tracer.Start(k)
	if _, err := fluentbit.RunScenario(k, "/var/log", fluentbit.VersionBuggy); err != nil {
		t.Fatal(err)
	}
	tracer.Stop()

	k2 := freshKernel()
	res, err := Session(backend, "events", "flb", k2)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res.Replayed == 0 {
		t.Fatal("nothing replayed")
	}
	if len(res.Mismatches) != 0 {
		t.Fatalf("replay diverged: %v", res.Mismatches)
	}
	// The data-loss signature survives replay: the replayed log file holds
	// the 16 unread bytes that the (replayed) forwarder skipped.
	data, err := k2.ReadFileContents("/var/log/app.log")
	if err != nil {
		t.Fatalf("replayed app.log: %v", err)
	}
	if len(data) != 16 {
		t.Fatalf("replayed app.log size = %d, want 16", len(data))
	}
}

func TestReplaySkipsUnknownDescriptors(t *testing.T) {
	// Events on descriptors whose open was not traced must be skipped, not
	// misapplied. Craft such a trace by filtering opens out.
	k := freshKernel()
	backend := store.New()
	tracer, _ := core.NewTracer(core.Config{
		SessionName:   "partial",
		Index:         "events",
		Backend:       backend,
		FlushInterval: time.Millisecond,
	})
	tracer.Start(k)
	task := k.NewProcess("app").NewTask("app")
	// Open BEFORE the events we keep: delete open events afterwards.
	fd, _ := task.Openat(kernel.AtFDCWD, "/f", kernel.OWronly|kernel.OCreat, 0o644)
	task.Write(fd, []byte("abc"))
	task.Close(fd)
	tracer.Stop()

	// Remove the open event from the store to simulate a partial trace.
	ix, _ := backend.GetIndex("events")
	ix.UpdateByQuery(store.Term(store.FieldSyscall, "openat"), func(d store.Document) bool {
		d[store.FieldSyscall] = "unsupported_syscall"
		return true
	})

	k2 := freshKernel()
	res, err := Session(backend, "events", "partial", k2)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res.Skipped != 3 { // rewritten open + orphan write + orphan close
		t.Fatalf("skipped = %d, want 3", res.Skipped)
	}
	if res.Replayed != 0 {
		t.Fatalf("replayed = %d, want 0", res.Replayed)
	}
}

func TestReplayXattrAndDirectories(t *testing.T) {
	backend, session := traceWorkload(t, func(k *kernel.Kernel) {
		task := k.NewProcess("app").NewTask("app")
		task.Mkdir("/dir", 0o755)
		fd, _ := task.Openat(kernel.AtFDCWD, "/dir/f", kernel.OWronly|kernel.OCreat, 0o644)
		task.Close(fd)
		task.Setxattr("/dir/f", "user.k", []byte("vv"))
		task.Getxattr("/dir/f", "user.k")
		task.Truncate("/dir/f", 100)
		task.Unlinkat(kernel.AtFDCWD, "/dir/f", false)
		task.Rmdir("/dir")
	})
	k2 := freshKernel()
	res, err := Session(backend, "events", session, k2)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res.Skipped != 0 || len(res.Mismatches) != 0 {
		t.Fatalf("result = %+v", res)
	}
}
