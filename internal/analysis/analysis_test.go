package analysis

import (
	"strings"
	"testing"
	"time"

	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/core"
	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/store"
)

// The substantive analysis tests moved with the implementation to
// internal/diagnose (patterns_test.go); what remains here verifies the
// deprecated wrappers still delegate correctly.

func TestDeprecatedWrappersDelegate(t *testing.T) {
	k := kernel.New(kernel.Config{Clock: clock.NewVirtualTicking(0, time.Microsecond)})
	k.MkdirAll("/d")
	backend := store.New()
	tracer, err := core.NewTracer(core.Config{
		SessionName: "wrap", Index: "events", Backend: backend,
		AutoCorrelate: true, FlushInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	tracer.Start(k)
	task := k.NewProcess("app").NewTask("app")
	fd, _ := task.Openat(kernel.AtFDCWD, "/d/f", kernel.ORdwr|kernel.OCreat, 0o644)
	buf := make([]byte, 8192)
	for i := 0; i < 4; i++ {
		task.Write(fd, buf)
	}
	task.Close(fd)
	tracer.Stop()

	p, err := FileOffsetPattern(backend, "events", "wrap", "/d/f")
	if err != nil {
		t.Fatal(err)
	}
	if p.Writes != 4 || p.Classification() != "sequential" {
		t.Fatalf("pattern = %+v", p)
	}

	files, err := HotFiles(backend, "events", "wrap", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || files[0].FilePath != "/d/f" {
		t.Fatalf("hot files = %+v", files)
	}

	deltas, err := CompareSessions(backend, "events", "wrap", "wrap")
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) == 0 {
		t.Fatal("no deltas")
	}
	out := RenderComparison(deltas, "wrap", "wrap").String()
	if !strings.Contains(out, "write") || !strings.Contains(out, "errors(wrap)") {
		t.Fatalf("rendered comparison:\n%s", out)
	}
}
