// Package analysis used to implement customizable analyses over traced
// events. The analyses now live in the diagnose package, folded into its
// context-first engine API; this package remains as a thin compatibility
// layer for one release.
//
// Deprecated: use package diagnose — FileOffsetPattern, HotFiles, and
// CompareSessions take a context there, and viz.ComparisonTable replaces
// RenderComparison.
package analysis

import (
	"context"

	"github.com/dsrhaslab/dio-go/internal/diagnose"
	"github.com/dsrhaslab/dio-go/internal/store"
	"github.com/dsrhaslab/dio-go/internal/viz"
)

// OffsetPattern summarizes the file-offset access pattern of one file in
// one session.
//
// Deprecated: use diagnose.OffsetPattern.
type OffsetPattern = diagnose.OffsetPattern

// SmallIOThreshold classifies an I/O as small (bytes).
//
// Deprecated: use diagnose.SmallIOThreshold.
const SmallIOThreshold = diagnose.SmallIOThreshold

// FileLoad summarizes the I/O volume attracted by one file.
//
// Deprecated: use diagnose.FileLoad.
type FileLoad = diagnose.FileLoad

// SessionDelta is one row of a session comparison.
//
// Deprecated: use diagnose.SessionDelta.
type SessionDelta = diagnose.SessionDelta

// FileOffsetPattern analyzes the offset pattern of filePath within a
// session.
//
// Deprecated: use diagnose.FileOffsetPattern, which takes a context.
func FileOffsetPattern(b store.Backend, index, session, filePath string) (OffsetPattern, error) {
	return diagnose.FileOffsetPattern(context.Background(), b, index, session, filePath)
}

// HotFiles ranks the session's files by data volume.
//
// Deprecated: use diagnose.HotFiles, which takes a context.
func HotFiles(b store.Backend, index, session string, topN int) ([]FileLoad, error) {
	return diagnose.HotFiles(context.Background(), b, index, session, topN)
}

// CompareSessions contrasts two tracing executions stored in the same
// backend.
//
// Deprecated: use diagnose.CompareSessions, which takes a context.
func CompareSessions(b store.Backend, index, sessionA, sessionB string) ([]SessionDelta, error) {
	return diagnose.CompareSessions(context.Background(), b, index, sessionA, sessionB)
}

// RenderComparison renders the session comparison as a table.
//
// Deprecated: use diagnose.ComparisonTable.
func RenderComparison(deltas []SessionDelta, sessionA, sessionB string) *viz.Table {
	return diagnose.ComparisonTable(deltas, sessionA, sessionB)
}
