package ebpf

import (
	"reflect"
	"testing"
)

// FuzzUnmarshal feeds arbitrary bytes to the record decoder: it must never
// panic, and any record it accepts must re-marshal to a decodable record.
func FuzzUnmarshal(f *testing.F) {
	seed := Record{
		NR: 7, PID: 1, TID: 2, EnterNS: 3, ExitNS: 4, Ret: -2,
		Comm: "app", Path: "/tmp/x",
	}
	f.Add(seed.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := Unmarshal(data)
		if err != nil {
			return
		}
		again, err := Unmarshal(rec.Marshal())
		if err != nil {
			t.Fatalf("re-unmarshal of accepted record failed: %v", err)
		}
		if !reflect.DeepEqual(rec, again) {
			t.Fatalf("re-marshal not stable:\n%+v\n%+v", rec, again)
		}
	})
}
