package ebpf

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/kernel"
)

func TestRecordMarshalRoundTrip(t *testing.T) {
	in := Record{
		NR:       uint16(kernel.SysOpenat),
		PID:      101,
		TID:      102,
		EnterNS:  1_679_308_382_363_981_568,
		ExitNS:   1_679_308_382_363_999_999,
		Ret:      3,
		FD:       -100,
		Count:    26,
		ArgOff:   -1,
		Whence:   2,
		Flags:    0x241,
		Mode:     0o644,
		Dev:      7340032,
		Ino:      12,
		BirthNS:  2156997363734041,
		Offset:   26,
		Comm:     "app",
		TaskComm: "flb-pipeline",
		Path:     "/tmp/app.log",
		Path2:    "/tmp/app.log.1",
		AttrName: "user.tag",
	}
	in.SetHaveFile()
	in.SetHaveOffset()

	buf := in.Marshal()
	if len(buf) != in.Size() {
		t.Fatalf("marshal length %d != Size() %d", len(buf), in.Size())
	}
	out, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
	if !out.HaveFile() || !out.HaveOffset() {
		t.Fatal("aux flags lost")
	}
}

func TestRecordTruncatesLongStrings(t *testing.T) {
	long := make([]byte, 1024)
	for i := range long {
		long[i] = 'a'
	}
	in := Record{Comm: string(long), Path: "/" + string(long)}
	out, err := Unmarshal(in.Marshal())
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(out.Comm) != CommLen {
		t.Fatalf("comm len = %d, want %d", len(out.Comm), CommLen)
	}
	if len(out.Path) != MaxPathLen {
		t.Fatalf("path len = %d, want %d", len(out.Path), MaxPathLen)
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	f := func(nr uint16, pid, tid int32, enter, exit, ret int64,
		comm, path string) bool {
		in := Record{
			NR: nr, PID: pid, TID: tid,
			EnterNS: enter, ExitNS: exit, Ret: ret,
			Comm: truncate(comm, CommLen), Path: truncate(path, MaxPathLen),
		}
		out, err := Unmarshal(in.Marshal())
		return err == nil && reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalShortBuffers(t *testing.T) {
	rec := Record{Comm: "x"}
	buf := rec.Marshal()
	for _, n := range []int{0, 3, 10, len(buf) - 1} {
		if _, err := Unmarshal(buf[:n]); err == nil {
			t.Errorf("Unmarshal(%d bytes) succeeded, want error", n)
		}
	}
	// Corrupt the length prefix.
	bad := append([]byte(nil), buf...)
	bad[0] = 0xff
	if _, err := Unmarshal(bad); err == nil {
		t.Error("Unmarshal with bad length prefix succeeded")
	}
}

func TestRingBufferFIFO(t *testing.T) {
	rb := NewRingBuffer(1 << 20)
	for i := byte(0); i < 10; i++ {
		if !rb.Write([]byte{i}) {
			t.Fatalf("write %d rejected", i)
		}
	}
	for i := byte(0); i < 10; i++ {
		rec, ok := rb.TryRead()
		if !ok || rec[0] != i {
			t.Fatalf("read %d = (%v, %v)", i, rec, ok)
		}
	}
	if _, ok := rb.TryRead(); ok {
		t.Fatal("read from empty buffer succeeded")
	}
}

func TestRingBufferDropsWhenFull(t *testing.T) {
	rb := NewRingBuffer(10)
	if !rb.Write(make([]byte, 6)) {
		t.Fatal("first write rejected")
	}
	if !rb.Write(make([]byte, 4)) {
		t.Fatal("second write rejected")
	}
	if rb.Write(make([]byte, 1)) {
		t.Fatal("overflow write accepted")
	}
	if rb.Drops() != 1 || rb.Writes() != 2 {
		t.Fatalf("drops=%d writes=%d", rb.Drops(), rb.Writes())
	}
	// Draining frees capacity.
	rb.TryRead()
	if !rb.Write(make([]byte, 5)) {
		t.Fatal("write after drain rejected")
	}
}

func TestRingBufferReadBatch(t *testing.T) {
	rb := NewRingBuffer(1 << 20)
	for i := byte(0); i < 5; i++ {
		rb.Write([]byte{i})
	}
	batch := rb.ReadBatch(3)
	if len(batch) != 3 || batch[0][0] != 0 || batch[2][0] != 2 {
		t.Fatalf("batch = %v", batch)
	}
	if rb.Pending() != 2 {
		t.Fatalf("pending = %d", rb.Pending())
	}
	batch = rb.ReadBatch(100)
	if len(batch) != 2 {
		t.Fatalf("second batch = %v", batch)
	}
	if rb.ReadBatch(10) != nil {
		t.Fatal("batch from empty buffer not nil")
	}
}

func TestRingBufferCloseDrops(t *testing.T) {
	rb := NewRingBuffer(100)
	rb.Close()
	if rb.Write([]byte{1}) {
		t.Fatal("write after close accepted")
	}
	if rb.Drops() != 1 {
		t.Fatalf("drops = %d", rb.Drops())
	}
}

func TestPerCPUSpreadsByTID(t *testing.T) {
	p := NewPerCPU(4, 1<<16)
	for tid := 0; tid < 8; tid++ {
		p.Write(tid, []byte{byte(tid)})
	}
	counts := 0
	for _, r := range p.Rings() {
		if r.Pending() != 2 {
			t.Fatalf("ring pending = %d, want 2", r.Pending())
		}
		counts += r.Pending()
	}
	if counts != 8 || p.Writes() != 8 {
		t.Fatalf("total = %d writes = %d", counts, p.Writes())
	}
}

func TestFilterTaskMatching(t *testing.T) {
	cf := Filter{PIDs: []int{100}, TIDs: []int{101, 102}}.compile()
	if !cf.matchTask(100, 101) {
		t.Fatal("matching pid+tid rejected")
	}
	if cf.matchTask(999, 101) {
		t.Fatal("wrong pid accepted")
	}
	if cf.matchTask(100, 999) {
		t.Fatal("wrong tid accepted")
	}
	empty := Filter{}.compile()
	if !empty.matchTask(1, 2) {
		t.Fatal("empty filter rejected a task")
	}
}

func TestFilterEnabledSyscallsDefault(t *testing.T) {
	if got := (Filter{}).EnabledSyscalls(); len(got) != kernel.NumSyscalls {
		t.Fatalf("default enabled = %d, want %d", len(got), kernel.NumSyscalls)
	}
	f := Filter{Syscalls: []kernel.Syscall{kernel.SysRead, kernel.SysWrite}}
	if got := f.EnabledSyscalls(); len(got) != 2 {
		t.Fatalf("restricted enabled = %d, want 2", len(got))
	}
}

func newTracedKernel(t *testing.T) *kernel.Kernel {
	t.Helper()
	k := kernel.New(kernel.Config{Clock: clock.NewVirtualTicking(0, time.Microsecond)})
	if err := k.MkdirAll("/tmp"); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	return k
}

func drainRecords(p *Program) []Record {
	var out []Record
	for _, r := range p.Rings().Rings() {
		for {
			raw, ok := r.TryRead()
			if !ok {
				break
			}
			rec, err := Unmarshal(raw)
			if err == nil {
				out = append(out, rec)
			}
		}
	}
	return out
}

func TestProgramCapturesSyscalls(t *testing.T) {
	k := newTracedKernel(t)
	task := k.NewProcess("app").NewTask("app")

	p := NewProgram(ProgramConfig{NumCPU: 2})
	p.Attach(k)
	defer p.Detach()

	fd, _ := task.Openat(kernel.AtFDCWD, "/tmp/a", kernel.OWronly|kernel.OCreat, 0o644)
	task.Write(fd, []byte("hello"))
	task.Close(fd)

	recs := drainRecords(p)
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	open, write, cl := recs[0], recs[1], recs[2]
	if kernel.Syscall(open.NR) != kernel.SysOpenat || open.Path != "/tmp/a" || open.Ret != int64(fd) {
		t.Fatalf("open record = %+v", open)
	}
	if kernel.Syscall(write.NR) != kernel.SysWrite || write.Ret != 5 || !write.HaveOffset() || write.Offset != 0 {
		t.Fatalf("write record = %+v", write)
	}
	if !write.HaveFile() || write.Ino != open.Ino || write.BirthNS != open.BirthNS {
		t.Fatalf("write enrichment = %+v vs open %+v", write, open)
	}
	if kernel.Syscall(cl.NR) != kernel.SysClose {
		t.Fatalf("close record = %+v", cl)
	}
	if p.Captured() != 3 || p.Filtered() != 0 || p.Drops() != 0 {
		t.Fatalf("counters: captured=%d filtered=%d drops=%d", p.Captured(), p.Filtered(), p.Drops())
	}
}

func TestProgramSyscallSubset(t *testing.T) {
	k := newTracedKernel(t)
	task := k.NewProcess("app").NewTask("app")

	p := NewProgram(ProgramConfig{Filter: Filter{
		Syscalls: []kernel.Syscall{kernel.SysWrite},
	}})
	p.Attach(k)
	defer p.Detach()

	fd, _ := task.Openat(kernel.AtFDCWD, "/tmp/a", kernel.OWronly|kernel.OCreat, 0o644)
	task.Write(fd, []byte("x"))
	task.Close(fd)

	recs := drainRecords(p)
	if len(recs) != 1 || kernel.Syscall(recs[0].NR) != kernel.SysWrite {
		t.Fatalf("records = %+v, want single write", recs)
	}
}

func TestProgramPIDFilter(t *testing.T) {
	k := newTracedKernel(t)
	a := k.NewProcess("a").NewTask("a")
	b := k.NewProcess("b").NewTask("b")

	p := NewProgram(ProgramConfig{Filter: Filter{PIDs: []int{a.PID()}}})
	p.Attach(k)
	defer p.Detach()

	fdA, _ := a.Openat(kernel.AtFDCWD, "/tmp/a", kernel.OWronly|kernel.OCreat, 0o644)
	a.Close(fdA)
	fdB, _ := b.Openat(kernel.AtFDCWD, "/tmp/b", kernel.OWronly|kernel.OCreat, 0o644)
	b.Close(fdB)

	recs := drainRecords(p)
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	for _, r := range recs {
		if int(r.PID) != a.PID() {
			t.Fatalf("leaked record from pid %d", r.PID)
		}
	}
}

func TestProgramPathFilterFollowsFDs(t *testing.T) {
	k := newTracedKernel(t)
	task := k.NewProcess("app").NewTask("app")
	k.MkdirAll("/data")

	p := NewProgram(ProgramConfig{Filter: Filter{PathPrefixes: []string{"/data"}}})
	p.Attach(k)
	defer p.Detach()

	// Matching file: open/write/close all captured.
	fd, _ := task.Openat(kernel.AtFDCWD, "/data/keep", kernel.OWronly|kernel.OCreat, 0o644)
	task.Write(fd, []byte("x"))
	task.Close(fd)
	// Non-matching file: everything filtered, including fd-based syscalls.
	fd2, _ := task.Openat(kernel.AtFDCWD, "/tmp/skip", kernel.OWronly|kernel.OCreat, 0o644)
	task.Write(fd2, []byte("y"))
	task.Close(fd2)
	// Path-based syscall on a matching path.
	task.Stat("/data/keep")
	// Path-based syscall on a non-matching path.
	task.Stat("/tmp/skip")

	recs := drainRecords(p)
	if len(recs) != 4 {
		for _, r := range recs {
			t.Logf("rec: %s path=%q fd=%d", kernel.Syscall(r.NR), r.Path, r.FD)
		}
		t.Fatalf("records = %d, want 4 (open,write,close,stat)", len(recs))
	}
	if p.Filtered() != 4 {
		t.Fatalf("filtered = %d, want 4", p.Filtered())
	}
}

func TestProgramDropsUnderPressure(t *testing.T) {
	k := newTracedKernel(t)
	task := k.NewProcess("app").NewTask("app")

	// A ring big enough for only a handful of records.
	p := NewProgram(ProgramConfig{NumCPU: 1, RingBytes: 512})
	p.Attach(k)
	defer p.Detach()

	fd, _ := task.Openat(kernel.AtFDCWD, "/tmp/a", kernel.OWronly|kernel.OCreat, 0o644)
	for i := 0; i < 100; i++ {
		task.Write(fd, []byte("x"))
	}
	task.Close(fd)

	if p.Drops() == 0 {
		t.Fatal("no drops despite tiny ring")
	}
	if p.Captured() != 102 {
		t.Fatalf("captured = %d, want 102", p.Captured())
	}
	if got := p.Rings().Writes() + p.Drops(); got != p.Captured() {
		t.Fatalf("writes+drops = %d, want %d", got, p.Captured())
	}
}

func TestProgramDetachStopsCapture(t *testing.T) {
	k := newTracedKernel(t)
	task := k.NewProcess("app").NewTask("app")
	p := NewProgram(ProgramConfig{})
	p.Attach(k)
	fd, _ := task.Openat(kernel.AtFDCWD, "/tmp/a", kernel.OWronly|kernel.OCreat, 0o644)
	task.Close(fd)
	before := p.Captured()
	p.Detach()
	fd2, _ := task.Openat(kernel.AtFDCWD, "/tmp/b", kernel.OWronly|kernel.OCreat, 0o644)
	task.Close(fd2)
	if p.Captured() != before {
		t.Fatalf("captured after detach: %d -> %d", before, p.Captured())
	}
}

func TestProgramEmitUnpairedDoublesRecords(t *testing.T) {
	k := newTracedKernel(t)
	task := k.NewProcess("app").NewTask("app")

	p := NewProgram(ProgramConfig{EmitUnpaired: true})
	p.Attach(k)
	defer p.Detach()

	fd, _ := task.Openat(kernel.AtFDCWD, "/tmp/u", kernel.OWronly|kernel.OCreat, 0o644)
	task.Write(fd, []byte("x"))
	task.Close(fd)

	recs := drainRecords(p)
	// 3 syscalls -> 3 entry records + 3 exit records.
	if len(recs) != 6 {
		t.Fatalf("records = %d, want 6 (unpaired mode)", len(recs))
	}
	// User-space pairing: entries have ExitNS zero, exits have it set; each
	// (tid, nr) entry must be matchable to a following exit.
	entries, exits := 0, 0
	for _, r := range recs {
		if r.ExitNS == 0 {
			entries++
		} else {
			exits++
		}
	}
	if entries != 3 || exits != 3 {
		t.Fatalf("entries/exits = %d/%d", entries, exits)
	}
}

func TestRingBufferBlockingMode(t *testing.T) {
	rb := NewRingBuffer(16)
	rb.SetBlocking(true)
	if !rb.Write(make([]byte, 10)) {
		t.Fatal("first write rejected")
	}

	// A producer blocks on a full ring until the consumer drains.
	wrote := make(chan bool, 1)
	go func() { wrote <- rb.Write(make([]byte, 10)) }()
	select {
	case <-wrote:
		t.Fatal("write did not block on full ring")
	case <-time.After(20 * time.Millisecond):
	}
	if _, ok := rb.TryRead(); !ok {
		t.Fatal("read failed")
	}
	select {
	case ok := <-wrote:
		if !ok {
			t.Fatal("blocked write failed after drain")
		}
	case <-time.After(time.Second):
		t.Fatal("blocked write never completed")
	}
	if rb.Drops() != 0 {
		t.Fatalf("drops = %d in blocking mode", rb.Drops())
	}
	if rb.Blocks() != 1 {
		t.Fatalf("blocks = %d, want 1", rb.Blocks())
	}
}

func TestRingBufferCloseReleasesBlockedProducer(t *testing.T) {
	rb := NewRingBuffer(4)
	rb.SetBlocking(true)
	rb.Write(make([]byte, 4))
	done := make(chan bool, 1)
	go func() { done <- rb.Write(make([]byte, 4)) }()
	time.Sleep(10 * time.Millisecond)
	rb.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("write succeeded on closed ring")
		}
	case <-time.After(time.Second):
		t.Fatal("blocked producer not released by Close")
	}
}
