package ebpf

import (
	"sync"
)

// RingBuffer is a bounded byte-accounted FIFO between a kernel-side producer
// and the user-space consumer. When the buffer is full, new records are
// dropped and counted — the non-blocking strategy that keeps tracing off the
// application's critical path at the cost of possible event loss (§I, §III-D).
type RingBuffer struct {
	mu       sync.Mutex
	space    *sync.Cond // signaled when capacity frees up (blocking mode)
	capBytes int
	used     int
	queue    [][]byte
	head     int
	blocking bool

	writes uint64
	drops  uint64
	blocks uint64 // producer waits in blocking mode
	closed bool

	// notify wakes a blocked consumer; buffered size 1 so producers never
	// block on it.
	notify chan struct{}
}

// NewRingBuffer creates a ring buffer with the given capacity in bytes.
func NewRingBuffer(capBytes int) *RingBuffer {
	rb := &RingBuffer{
		capBytes: capBytes,
		notify:   make(chan struct{}, 1),
	}
	rb.space = sync.NewCond(&rb.mu)
	return rb
}

// SetBlocking switches the buffer into back-pressure mode: instead of
// dropping when full, Write blocks the producer until the consumer frees
// space — the strace-style trade-off (no loss, application slowdown) that
// DIO's non-blocking design deliberately avoids (§I). Exists for the
// ablation benchmark.
func (rb *RingBuffer) SetBlocking(v bool) {
	rb.mu.Lock()
	rb.blocking = v
	rb.mu.Unlock()
}

// Blocks reports how many producer waits occurred in blocking mode.
func (rb *RingBuffer) Blocks() uint64 {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return rb.blocks
}

// Write offers a record to the buffer. In the default non-blocking mode it
// never blocks: if the record does not fit, it is dropped and Write returns
// false. In blocking mode it waits for the consumer instead.
func (rb *RingBuffer) Write(rec []byte) bool {
	rb.mu.Lock()
	if rb.blocking {
		waited := false
		for !rb.closed && rb.used+len(rec) > rb.capBytes {
			if !waited {
				rb.blocks++
				waited = true
			}
			rb.space.Wait()
		}
	}
	if rb.closed || rb.used+len(rec) > rb.capBytes {
		rb.drops++
		rb.mu.Unlock()
		return false
	}
	rb.queue = append(rb.queue, rec)
	rb.used += len(rec)
	rb.writes++
	rb.mu.Unlock()
	select {
	case rb.notify <- struct{}{}:
	default:
	}
	return true
}

// TryRead pops the oldest record, if any.
func (rb *RingBuffer) TryRead() ([]byte, bool) {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.head >= len(rb.queue) {
		return nil, false
	}
	rec := rb.queue[rb.head]
	rb.queue[rb.head] = nil
	rb.head++
	rb.used -= len(rec)
	if rb.head == len(rb.queue) {
		rb.queue = rb.queue[:0]
		rb.head = 0
	} else if rb.head > 1024 && rb.head*2 > len(rb.queue) {
		rb.queue = append(rb.queue[:0], rb.queue[rb.head:]...)
		rb.head = 0
	}
	rb.space.Broadcast()
	return rec, true
}

// ReadBatch pops up to max records into a fresh slice.
func (rb *RingBuffer) ReadBatch(max int) [][]byte {
	return rb.ReadBatchInto(nil, max)
}

// ReadBatchInto pops up to max records, appending them to dst (which is
// returned, possibly reallocated). Consumers that drain in a loop pass the
// previous result re-sliced to [:0] so the backing array is reused and the
// drain path stops allocating a slice header block per call.
func (rb *RingBuffer) ReadBatchInto(dst [][]byte, max int) [][]byte {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	n := len(rb.queue) - rb.head
	if n == 0 {
		return dst
	}
	if n > max {
		n = max
	}
	for i := 0; i < n; i++ {
		rec := rb.queue[rb.head+i]
		rb.used -= len(rec)
		rb.queue[rb.head+i] = nil
		dst = append(dst, rec)
	}
	rb.head += n
	if rb.head == len(rb.queue) {
		rb.queue = rb.queue[:0]
		rb.head = 0
	}
	rb.space.Broadcast()
	return dst
}

// Notify returns the consumer wake-up channel.
func (rb *RingBuffer) Notify() <-chan struct{} { return rb.notify }

// Pending reports the number of queued records.
func (rb *RingBuffer) Pending() int {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return len(rb.queue) - rb.head
}

// Writes returns the number of successfully written records.
func (rb *RingBuffer) Writes() uint64 {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return rb.writes
}

// Drops returns the number of records discarded because the buffer was full.
func (rb *RingBuffer) Drops() uint64 {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return rb.drops
}

// Close marks the buffer closed; subsequent writes are dropped and any
// blocked producers are released.
func (rb *RingBuffer) Close() {
	rb.mu.Lock()
	rb.closed = true
	rb.space.Broadcast()
	rb.mu.Unlock()
	select {
	case rb.notify <- struct{}{}:
	default:
	}
}

// PerCPU models the per-CPU ring buffer array used by the tracer (§II-B):
// each producer writes to the ring of its (simulated) CPU, chosen by a
// stable hash of the thread ID.
type PerCPU struct {
	rings []*RingBuffer
}

// NewPerCPU creates nCPU rings of capBytes each (the paper's deployment used
// 256 MiB per core).
func NewPerCPU(nCPU, capBytes int) *PerCPU {
	if nCPU < 1 {
		nCPU = 1
	}
	p := &PerCPU{rings: make([]*RingBuffer, nCPU)}
	for i := range p.rings {
		p.rings[i] = NewRingBuffer(capBytes)
	}
	return p
}

// Write publishes rec on the ring of tid's CPU.
func (p *PerCPU) Write(tid int, rec []byte) bool {
	return p.rings[tid%len(p.rings)].Write(rec)
}

// Rings returns the underlying rings for the consumer loop.
func (p *PerCPU) Rings() []*RingBuffer { return p.rings }

// Drops sums drops across CPUs.
func (p *PerCPU) Drops() uint64 {
	var n uint64
	for _, r := range p.rings {
		n += r.Drops()
	}
	return n
}

// Writes sums successful writes across CPUs.
func (p *PerCPU) Writes() uint64 {
	var n uint64
	for _, r := range p.rings {
		n += r.Writes()
	}
	return n
}

// Pending sums queued records across CPUs.
func (p *PerCPU) Pending() int {
	var n int
	for _, r := range p.rings {
		n += r.Pending()
	}
	return n
}

// Close closes all rings.
func (p *PerCPU) Close() {
	for _, r := range p.rings {
		r.Close()
	}
}
