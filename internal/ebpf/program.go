package ebpf

import (
	"sync"
	"sync/atomic"

	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/telemetry"
)

// ProgramConfig parametrizes the kernel-side tracing program.
type ProgramConfig struct {
	// Filter is applied in kernel space before records reach the rings.
	Filter Filter
	// NumCPU is the number of per-CPU ring buffers.
	NumCPU int
	// RingBytes is the capacity of each per-CPU ring, in bytes. The paper's
	// deployment used 256 MiB per core; benchmarks shrink it to provoke the
	// event-loss behaviour of §III-D.
	RingBytes int
	// PerEventCost optionally charges a synthetic cost (in spins of the
	// simulated clock) per traced event; used by the overhead experiments.
	// Nil means no extra cost.
	PerEventCost func()
	// EmitUnpaired disables the kernel-space entry/exit aggregation that
	// DIO, CaT, and Tracee perform: the program publishes one record at
	// sys_enter and another at sys_exit, doubling ring traffic and leaving
	// pairing to user space. Exists for the ablation benchmark of the
	// paper's design choice.
	EmitUnpaired bool
	// Telemetry, when non-nil, receives the kernel-stage self-accounting
	// (capture/filter counters, ring produce/drop, ring occupancy). Nil
	// disables recording at the cost of one branch per event.
	Telemetry *telemetry.Registry
}

// DefaultRingBytes is the per-CPU ring capacity used when unset (scaled down
// from the paper's 256 MiB to suit in-memory simulation scales).
const DefaultRingBytes = 4 << 20

// Program is the kernel-side half of the tracer: one logical eBPF program
// pair (sys_enter + sys_exit) shared across all enabled tracepoints. It
// pairs entries with exits per thread in "kernel space", applies filters,
// and publishes binary records to per-CPU ring buffers.
type Program struct {
	cfg    ProgramConfig
	filter compiledFilter
	rings  *PerCPU
	fdMap  *fdInterestMap

	// pending pairs sys_enter with sys_exit per thread, as a real
	// implementation does with a BPF hash map keyed by thread ID.
	mu      sync.Mutex
	pending map[int]int64 // tid -> enter timestamp (args travel on Exit)

	captured atomic.Uint64 // records written to a ring (pre-drop)
	filtered atomic.Uint64 // events rejected by kernel-side filters

	// Telemetry counters (nil-safe no-ops when ProgramConfig.Telemetry is
	// unset). Produce/drop are recorded at the ring boundary so the ledger's
	// Captured == Produced + RingDropped holds by construction.
	tmCaptured     *telemetry.Counter
	tmFiltered     *telemetry.Counter
	tmRingProduced *telemetry.Counter
	tmRingDropped  *telemetry.Counter

	detaches []func()
}

// NewProgram creates a tracing program with its per-CPU rings.
func NewProgram(cfg ProgramConfig) *Program {
	if cfg.NumCPU < 1 {
		cfg.NumCPU = 1
	}
	if cfg.RingBytes <= 0 {
		cfg.RingBytes = DefaultRingBytes
	}
	p := &Program{
		cfg:     cfg,
		filter:  cfg.Filter.compile(),
		rings:   NewPerCPU(cfg.NumCPU, cfg.RingBytes),
		fdMap:   newFDInterestMap(),
		pending: make(map[int]int64),
	}
	if tm := cfg.Telemetry; tm != nil {
		p.tmCaptured = tm.Counter(telemetry.MetricCaptured, "events accepted by kernel-side filters")
		p.tmFiltered = tm.Counter(telemetry.MetricFiltered, "events rejected in kernel space")
		p.tmRingProduced = tm.Counter(telemetry.MetricRingProduced, "records written to per-CPU rings")
		p.tmRingDropped = tm.Counter(telemetry.MetricRingDropped, "records lost to full rings")
		rings := p.rings
		tm.GaugeFunc(telemetry.MetricRingPending, "records currently queued in rings",
			func() float64 { return float64(rings.Pending()) })
	}
	return p
}

// Rings exposes the per-CPU buffers to the user-space consumer.
func (p *Program) Rings() *PerCPU { return p.rings }

// Captured returns the number of events accepted by the filters (written or
// attempted against the rings).
func (p *Program) Captured() uint64 { return p.captured.Load() }

// Filtered returns the number of events rejected in kernel space.
func (p *Program) Filtered() uint64 { return p.filtered.Load() }

// Drops returns the number of events lost to full ring buffers.
func (p *Program) Drops() uint64 { return p.rings.Drops() }

// Attach enables the program on the filter's syscall set against k's
// tracepoints. Call Detach to remove it.
func (p *Program) Attach(k *kernel.Kernel) {
	tps := k.Tracepoints()
	for _, nr := range p.cfg.Filter.EnabledSyscalls() {
		p.detaches = append(p.detaches,
			tps.AttachEnter(nr, p.handleEnter),
			tps.AttachExit(nr, p.handleExit),
		)
	}
}

// Detach removes the program from all tracepoints and closes the rings.
func (p *Program) Detach() {
	for _, d := range p.detaches {
		d()
	}
	p.detaches = nil
	p.rings.Close()
}

func (p *Program) handleEnter(e *kernel.Enter) {
	if !p.filter.matchTask(e.PID, e.TID) {
		return
	}
	if p.cfg.EmitUnpaired {
		// Ablation mode: ship the raw entry record instead of stashing it
		// in the kernel map (user space must pair it with the exit).
		rec := Record{
			NR:       uint16(e.NR),
			PID:      int32(e.PID),
			TID:      int32(e.TID),
			EnterNS:  e.TimeNS,
			FD:       int32(e.Args.FD),
			Count:    int32(e.Args.Count),
			ArgOff:   e.Args.Offset,
			Whence:   int32(e.Args.Whence),
			Flags:    int32(e.Args.Flags),
			Mode:     e.Args.Mode,
			Comm:     truncate(e.ProcName, CommLen),
			TaskComm: truncate(e.TaskName, CommLen),
			Path:     truncate(e.Args.Path, MaxPathLen),
			Path2:    truncate(e.Args.Path2, MaxPathLen),
			AttrName: truncate(e.Args.AttrName, MaxPathLen),
		}
		p.captured.Add(1)
		p.tmCaptured.Inc()
		if p.rings.Write(e.TID, rec.Marshal()) {
			p.tmRingProduced.Inc()
		} else {
			p.tmRingDropped.Inc()
		}
	} else {
		p.mu.Lock()
		p.pending[e.TID] = e.TimeNS
		p.mu.Unlock()
	}
	if p.cfg.PerEventCost != nil {
		p.cfg.PerEventCost()
	}
}

func (p *Program) handleExit(e *kernel.Exit) {
	if !p.filter.matchTask(e.PID, e.TID) {
		return
	}
	var enterNS int64
	if p.cfg.EmitUnpaired {
		enterNS = e.TimeNS
	} else {
		p.mu.Lock()
		ns, ok := p.pending[e.TID]
		if ok {
			delete(p.pending, e.TID)
		}
		p.mu.Unlock()
		if !ok {
			// Exit without a matching entry (attached mid-syscall); keep
			// the exit timestamp as the best available approximation.
			ns = e.TimeNS
		}
		enterNS = ns
	}

	if !p.passPathFilter(e) {
		p.filtered.Add(1)
		p.tmFiltered.Inc()
		return
	}

	rec := RecordFromExit(e)
	rec.EnterNS = enterNS
	p.captured.Add(1)
	p.tmCaptured.Inc()
	if p.rings.Write(e.TID, rec.Marshal()) {
		p.tmRingProduced.Inc()
	} else {
		p.tmRingDropped.Inc()
	}
	if p.cfg.PerEventCost != nil {
		p.cfg.PerEventCost()
	}
}

// passPathFilter applies the path-prefix filter. Path-based syscalls match
// on their argument path; fd-based syscalls consult the fd-interest map,
// which successful opens of matching paths populate.
func (p *Program) passPathFilter(e *kernel.Exit) bool {
	if !p.filter.hasPathFilter() {
		return true
	}
	nr := e.NR
	switch {
	case nr == kernel.SysOpen || nr == kernel.SysOpenat || nr == kernel.SysCreat:
		if !p.filter.matchPath(e.Args.Path) {
			return false
		}
		if e.Ret >= 0 {
			p.fdMap.add(e.PID, int(e.Ret))
		}
		return true
	case nr == kernel.SysClose:
		ok := p.fdMap.has(e.PID, e.Args.FD)
		if ok {
			p.fdMap.remove(e.PID, e.Args.FD)
		}
		return ok
	case nr.UsesFD():
		return p.fdMap.has(e.PID, e.Args.FD)
	case nr == kernel.SysRename || nr == kernel.SysRenameat || nr == kernel.SysRenameat2:
		return p.filter.matchPath(e.Args.Path) || p.filter.matchPath(e.Args.Path2)
	default:
		return p.filter.matchPath(e.Args.Path)
	}
}
