package ebpf

import (
	"strings"
	"sync"

	"github.com/dsrhaslab/dio-go/internal/kernel"
)

// Filter is the kernel-side filtering specification (§II-B): events can be
// narrowed by syscall type, process or thread IDs, and target file or
// directory paths, before anything is copied to user space.
type Filter struct {
	// Syscalls restricts which tracepoints are enabled. Empty means all 42.
	Syscalls []kernel.Syscall
	// PIDs restricts tracing to these processes. Empty means all.
	PIDs []int
	// TIDs restricts tracing to these threads. Empty means all.
	TIDs []int
	// PathPrefixes restricts tracing to files or directories under these
	// prefixes. Empty means all paths.
	PathPrefixes []string
}

// compiledFilter is the runtime form with O(1) membership checks.
type compiledFilter struct {
	pids     map[int]struct{}
	tids     map[int]struct{}
	prefixes []string
}

func (f Filter) compile() compiledFilter {
	cf := compiledFilter{prefixes: append([]string(nil), f.PathPrefixes...)}
	if len(f.PIDs) > 0 {
		cf.pids = make(map[int]struct{}, len(f.PIDs))
		for _, p := range f.PIDs {
			cf.pids[p] = struct{}{}
		}
	}
	if len(f.TIDs) > 0 {
		cf.tids = make(map[int]struct{}, len(f.TIDs))
		for _, t := range f.TIDs {
			cf.tids[t] = struct{}{}
		}
	}
	return cf
}

// EnabledSyscalls resolves the syscall set of the filter: all of Table I
// when unset.
func (f Filter) EnabledSyscalls() []kernel.Syscall {
	if len(f.Syscalls) == 0 {
		return kernel.AllSyscalls()
	}
	return append([]kernel.Syscall(nil), f.Syscalls...)
}

func (cf *compiledFilter) matchTask(pid, tid int) bool {
	if cf.pids != nil {
		if _, ok := cf.pids[pid]; !ok {
			return false
		}
	}
	if cf.tids != nil {
		if _, ok := cf.tids[tid]; !ok {
			return false
		}
	}
	return true
}

func (cf *compiledFilter) hasPathFilter() bool { return len(cf.prefixes) > 0 }

func (cf *compiledFilter) matchPath(path string) bool {
	if len(cf.prefixes) == 0 {
		return true
	}
	for _, p := range cf.prefixes {
		if strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}

// fdKey identifies an open descriptor within a process, for the kernel map
// that extends path filtering to fd-based syscalls.
type fdKey struct {
	pid int
	fd  int
}

// fdInterestMap is the eBPF map that remembers which descriptors refer to
// filtered paths: populated when an open of a matching path succeeds,
// consulted by fd-based syscalls, and cleaned on close.
type fdInterestMap struct {
	mu sync.Mutex
	m  map[fdKey]struct{}
}

func newFDInterestMap() *fdInterestMap {
	return &fdInterestMap{m: make(map[fdKey]struct{})}
}

func (fim *fdInterestMap) add(pid, fd int) {
	fim.mu.Lock()
	fim.m[fdKey{pid, fd}] = struct{}{}
	fim.mu.Unlock()
}

func (fim *fdInterestMap) has(pid, fd int) bool {
	fim.mu.Lock()
	_, ok := fim.m[fdKey{pid, fd}]
	fim.mu.Unlock()
	return ok
}

func (fim *fdInterestMap) remove(pid, fd int) {
	fim.mu.Lock()
	delete(fim.m, fdKey{pid, fd})
	fim.mu.Unlock()
}
