// Package ebpf implements the in-kernel half of DIO's tracer as an
// eBPF-style runtime: small programs attach to the simulated kernel's
// syscall tracepoints, filter events in "kernel space", pair syscall entry
// and exit into a single record, and publish fixed-layout binary records
// through bounded per-CPU ring buffers. When producers outpace the
// user-space consumer the buffers drop events, exactly like the real
// ring-buffer behaviour measured in §III-D of the paper.
package ebpf

import (
	"encoding/binary"
	"errors"

	"github.com/dsrhaslab/dio-go/internal/kernel"
)

// CommLen mirrors the kernel TASK_COMM_LEN: thread and process names are
// truncated to this many bytes in trace records.
const CommLen = 16

// MaxPathLen bounds the path bytes copied into a record, as eBPF programs
// copy paths into fixed-size per-record buffers.
const MaxPathLen = 256

// Record is the binary payload exchanged between the kernel-side programs
// and the user-space tracer: one fully paired syscall with its enrichment.
type Record struct {
	NR       uint16
	PID      int32
	TID      int32
	EnterNS  int64
	ExitNS   int64
	Ret      int64
	FD       int32
	Count    int32
	ArgOff   int64
	Whence   int32
	Flags    int32
	Mode     uint32
	AuxFlags uint8 // bit 0: have file, bit 1: have offset
	FType    uint8 // kernel.FileType of the accessed object (0 when unknown)
	Dev      uint64
	Ino      uint64
	BirthNS  int64
	Offset   int64
	Comm     string // process name, truncated to CommLen
	TaskComm string // thread name, truncated to CommLen
	Path     string
	Path2    string
	AttrName string
}

// Aux flag bits.
const (
	auxHaveFile   = 1 << 0
	auxHaveOffset = 1 << 1
)

// HaveFile reports whether the record carries file enrichment.
func (r *Record) HaveFile() bool { return r.AuxFlags&auxHaveFile != 0 }

// HaveOffset reports whether the record carries a file offset.
func (r *Record) HaveOffset() bool { return r.AuxFlags&auxHaveOffset != 0 }

// SetHaveFile marks the record as carrying file enrichment.
func (r *Record) SetHaveFile() { r.AuxFlags |= auxHaveFile }

// SetHaveOffset marks the record as carrying a file offset.
func (r *Record) SetHaveOffset() { r.AuxFlags |= auxHaveOffset }

func truncate(s string, max int) string {
	if len(s) > max {
		return s[:max]
	}
	return s
}

const fixedHeaderLen = 2 + 4 + 4 + 8 + 8 + 8 + 4 + 4 + 8 + 4 + 4 + 4 + 1 + 1 + 8 + 8 + 8 + 8

// Size returns the marshaled length of the record in bytes; the ring buffer
// accounts capacity in bytes, as the real BPF ring buffer does.
func (r *Record) Size() int {
	n := 4 + fixedHeaderLen // u32 total length prefix + fixed fields
	for _, s := range []string{
		truncate(r.Comm, CommLen),
		truncate(r.TaskComm, CommLen),
		truncate(r.Path, MaxPathLen),
		truncate(r.Path2, MaxPathLen),
		truncate(r.AttrName, MaxPathLen),
	} {
		n += 2 + len(s)
	}
	return n
}

// Marshal encodes the record into a fresh byte slice.
func (r *Record) Marshal() []byte {
	buf := make([]byte, r.Size())
	le := binary.LittleEndian
	le.PutUint32(buf[0:], uint32(len(buf)))
	o := 4
	le.PutUint16(buf[o:], r.NR)
	o += 2
	le.PutUint32(buf[o:], uint32(r.PID))
	o += 4
	le.PutUint32(buf[o:], uint32(r.TID))
	o += 4
	le.PutUint64(buf[o:], uint64(r.EnterNS))
	o += 8
	le.PutUint64(buf[o:], uint64(r.ExitNS))
	o += 8
	le.PutUint64(buf[o:], uint64(r.Ret))
	o += 8
	le.PutUint32(buf[o:], uint32(r.FD))
	o += 4
	le.PutUint32(buf[o:], uint32(r.Count))
	o += 4
	le.PutUint64(buf[o:], uint64(r.ArgOff))
	o += 8
	le.PutUint32(buf[o:], uint32(r.Whence))
	o += 4
	le.PutUint32(buf[o:], uint32(r.Flags))
	o += 4
	le.PutUint32(buf[o:], r.Mode)
	o += 4
	buf[o] = r.AuxFlags
	o++
	buf[o] = r.FType
	o++
	le.PutUint64(buf[o:], r.Dev)
	o += 8
	le.PutUint64(buf[o:], r.Ino)
	o += 8
	le.PutUint64(buf[o:], uint64(r.BirthNS))
	o += 8
	le.PutUint64(buf[o:], uint64(r.Offset))
	o += 8
	for _, s := range []string{
		truncate(r.Comm, CommLen),
		truncate(r.TaskComm, CommLen),
		truncate(r.Path, MaxPathLen),
		truncate(r.Path2, MaxPathLen),
		truncate(r.AttrName, MaxPathLen),
	} {
		le.PutUint16(buf[o:], uint16(len(s)))
		o += 2
		copy(buf[o:], s)
		o += len(s)
	}
	return buf
}

// ErrShortRecord reports a truncated or corrupt record buffer.
var ErrShortRecord = errors.New("ebpf: short record")

// Unmarshal decodes a record previously produced by Marshal.
func Unmarshal(buf []byte) (Record, error) {
	var r Record
	err := UnmarshalInto(buf, &r)
	return r, err
}

// UnmarshalInto decodes into an existing record, letting the drain loop
// reuse one Record value across a whole batch instead of allocating per
// record. r is overwritten entirely on success and left unspecified on error.
func UnmarshalInto(buf []byte, r *Record) error {
	le := binary.LittleEndian
	if len(buf) < 4+fixedHeaderLen {
		return ErrShortRecord
	}
	total := int(le.Uint32(buf[0:]))
	if total != len(buf) {
		return ErrShortRecord
	}
	o := 4
	r.NR = le.Uint16(buf[o:])
	o += 2
	r.PID = int32(le.Uint32(buf[o:]))
	o += 4
	r.TID = int32(le.Uint32(buf[o:]))
	o += 4
	r.EnterNS = int64(le.Uint64(buf[o:]))
	o += 8
	r.ExitNS = int64(le.Uint64(buf[o:]))
	o += 8
	r.Ret = int64(le.Uint64(buf[o:]))
	o += 8
	r.FD = int32(le.Uint32(buf[o:]))
	o += 4
	r.Count = int32(le.Uint32(buf[o:]))
	o += 4
	r.ArgOff = int64(le.Uint64(buf[o:]))
	o += 8
	r.Whence = int32(le.Uint32(buf[o:]))
	o += 4
	r.Flags = int32(le.Uint32(buf[o:]))
	o += 4
	r.Mode = le.Uint32(buf[o:])
	o += 4
	r.AuxFlags = buf[o]
	o++
	r.FType = buf[o]
	o++
	r.Dev = le.Uint64(buf[o:])
	o += 8
	r.Ino = le.Uint64(buf[o:])
	o += 8
	r.BirthNS = int64(le.Uint64(buf[o:]))
	o += 8
	r.Offset = int64(le.Uint64(buf[o:]))
	o += 8
	var strs [5]string
	for i := range strs {
		if o+2 > len(buf) {
			return ErrShortRecord
		}
		n := int(le.Uint16(buf[o:]))
		o += 2
		if o+n > len(buf) {
			return ErrShortRecord
		}
		strs[i] = string(buf[o : o+n])
		o += n
	}
	r.Comm, r.TaskComm, r.Path, r.Path2, r.AttrName = strs[0], strs[1], strs[2], strs[3], strs[4]
	return nil
}

// RecordFromExit builds a record from a kernel sys_exit payload. It is the
// core of the eBPF program body: copy syscall info, process info, time
// info, and the kernel-context enrichment into the fixed layout.
func RecordFromExit(e *kernel.Exit) Record {
	r := Record{
		NR:       uint16(e.NR),
		PID:      int32(e.PID),
		TID:      int32(e.TID),
		EnterNS:  e.TimeNS,
		ExitNS:   e.ExitNS,
		Ret:      e.Ret,
		FD:       int32(e.Args.FD),
		Count:    int32(e.Args.Count),
		ArgOff:   e.Args.Offset,
		Whence:   int32(e.Args.Whence),
		Flags:    int32(e.Args.Flags),
		Mode:     e.Args.Mode,
		Comm:     truncate(e.ProcName, CommLen),
		TaskComm: truncate(e.TaskName, CommLen),
		Path:     truncate(e.Args.Path, MaxPathLen),
		Path2:    truncate(e.Args.Path2, MaxPathLen),
		AttrName: truncate(e.Args.AttrName, MaxPathLen),
	}
	if e.Aux.HaveFile {
		r.SetHaveFile()
		r.FType = uint8(e.Aux.FileType)
		r.Dev = e.Aux.Dev
		r.Ino = e.Aux.Ino
		r.BirthNS = e.Aux.BirthNS
	}
	if e.Aux.HaveOffset {
		r.SetHaveOffset()
		r.Offset = e.Aux.Offset
	}
	if r.Path == "" && e.Aux.Path != "" {
		r.Path = truncate(e.Aux.Path, MaxPathLen)
	}
	return r
}
