// Diagnosis-engine benchmarks: building a per-process syscall
// Directly-Follows-Graph and running the full detector registry over a
// 120k-event session. Both paths stream the session through paged typed
// cursors (store.EachEventPage) instead of materializing it, so memory
// stays flat regardless of session size; the numbers recorded in
// BENCH_store.json track the per-run cost of that streaming scan.
package dio_test

import (
	"context"
	"fmt"
	"testing"

	"github.com/dsrhaslab/dio-go/internal/diagnose"
	"github.com/dsrhaslab/dio-go/internal/event"
	"github.com/dsrhaslab/dio-go/internal/store"
)

const (
	diagBenchEvents = 120_000
	diagBenchBatch  = 1000
)

// diagBenchBatchEvents emulates a database-style workload: four worker
// threads cycling through open → (read, lseek)… → write → close against a
// small set of files, which gives the DFG builder a non-trivial edge set
// and the pattern detectors real offsets and paths to chew on.
func diagBenchBatchEvents(base int64, start, n int) []event.Event {
	syscalls := []string{"openat", "read", "lseek", "read", "lseek", "write", "close"}
	classes := []string{"metadata", "read", "metadata", "read", "metadata", "write", "metadata"}
	evs := make([]event.Event, n)
	for i := range evs {
		seq := start + i
		k := seq % len(syscalls)
		enter := base + int64(i)*25_000
		evs[i] = event.Event{
			Session:     "diagbench",
			Syscall:     syscalls[k],
			Class:       classes[k],
			RetVal:      4096,
			FD:          5,
			Count:       4096,
			Offset:      int64(seq%64) * 4096,
			HasOffset:   classes[k] != "metadata",
			PID:         100,
			TID:         101 + seq%4,
			ProcName:    "db_bench",
			ThreadName:  "worker",
			FilePath:    fmt.Sprintf("/data/f%03d.dat", seq%8),
			TimeEnterNS: enter,
			TimeExitNS:  enter + 1200,
		}
	}
	return evs
}

func diagBenchStore(b *testing.B) *store.Store {
	b.Helper()
	st := store.New()
	ctx := context.Background()
	var clock int64 = 1_000_000_000
	for n := 0; n < diagBenchEvents; n += diagBenchBatch {
		if err := st.BulkEvents(ctx, "bench", diagBenchBatchEvents(clock, n, diagBenchBatch)); err != nil {
			b.Fatal(err)
		}
		clock += diagBenchBatch * 25_000
	}
	return st
}

// BenchmarkDFGBuild times one streaming DFG construction over the 120k-event
// session: a single time-ordered cursor pass accumulating node counts and
// follows-edges with latency quantile sketches.
func BenchmarkDFGBuild(b *testing.B) {
	st := diagBenchStore(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := diagnose.BuildDFG(ctx, st, "bench", "diagbench", 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(g.Procs) == 0 {
			b.Fatal("empty DFG")
		}
	}
}

// BenchmarkEngineRun times a full diagnosis: the shared DFG build plus every
// registered detector (stale-offset, costly patterns, failing syscalls,
// contention, DFG anti-patterns) streaming the same session.
func BenchmarkEngineRun(b *testing.B) {
	st := diagBenchStore(b)
	ctx := context.Background()
	eng := diagnose.NewEngine(diagnose.DefaultRegistry())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := eng.Run(ctx, st, "bench", "diagbench")
		if err != nil {
			b.Fatal(err)
		}
		if rep.Session != "diagbench" {
			b.Fatalf("report session = %q", rep.Session)
		}
	}
}
