// Segment-pruning benchmark: a narrow time-range query (the dashboard's
// "last few minutes" window) against a tiered store whose history spans many
// time-disjoint cold segments. The pruned side lets the query planner skip
// segments whose stamped [MinTime, MaxTime] cannot overlap the window; the
// full-scan side disables pruning through the ablation toggle, so both sides
// run the same query against the same files through the same binary. See
// BENCH_store.json for the committed comparison.
package dio_test

import (
	"context"
	"testing"
	"time"

	"github.com/dsrhaslab/dio-go/internal/event"
	"github.com/dsrhaslab/dio-go/internal/store"
)

const (
	pruneBenchSegments   = 8
	pruneBenchRowsPerSeg = 2000
	pruneBenchWindowNS   = int64(60_000_000_000) // segments are one minute of trace apart
	pruneBenchIndex      = "events"
)

func pruneBenchEvents(seg int) []event.Event {
	base := int64(1<<60) + int64(seg)*pruneBenchWindowNS
	evs := make([]event.Event, pruneBenchRowsPerSeg)
	for i := range evs {
		enter := base + int64(i)*1000
		evs[i] = event.Event{
			Session: "prune", Syscall: []string{"read", "write", "openat"}[i%3],
			Class: "file", ProcName: "app", ThreadName: "w",
			PID: 9, TID: 10 + i%4, RetVal: 4096, FD: 5, Count: 4096,
			TimeEnterNS: enter, TimeExitNS: enter + 700,
		}
	}
	return evs
}

// BenchmarkSegmentPrunedSearch measures the cold read path with and without
// time-range segment pruning over pruneBenchSegments time-disjoint segments.
func BenchmarkSegmentPrunedSearch(b *testing.B) {
	dir := b.TempDir()
	// Query cache and rollups off: this measures segment opening, not caching.
	st, err := store.Open(
		store.WithDataDir(dir),
		store.WithFsyncPolicy(store.FsyncOff),
		store.WithSnapshotInterval(0),
		store.WithRetention(500_000*time.Hour),
		store.WithQueryCache(0),
		store.WithRollupInterval(0),
	)
	if err != nil {
		b.Fatalf("open: %v", err)
	}
	defer st.Close()
	ctx := context.Background()
	for seg := 0; seg < pruneBenchSegments; seg++ {
		if err := st.BulkEvents(ctx, pruneBenchIndex, pruneBenchEvents(seg)); err != nil {
			b.Fatalf("seg %d: bulk: %v", seg, err)
		}
		if err := st.Snapshot(); err != nil {
			b.Fatalf("seg %d: snapshot: %v", seg, err)
		}
	}
	ix, ok := st.GetIndex(pruneBenchIndex)
	if !ok {
		b.Fatal("index missing")
	}
	// The window: one segment's worth of time, in the middle of the history.
	lo := float64(int64(1<<60) + 5*pruneBenchWindowNS)
	hi := lo + float64(pruneBenchWindowNS)/2
	req := store.SearchRequest{
		Query: store.Must(
			store.Term(store.FieldSession, "prune"),
			store.RangeBetween(store.FieldTimeEnter, lo, hi),
		),
		Size: 10,
		Aggs: map[string]store.Agg{
			"by_syscall": {Terms: &store.TermsAgg{Field: store.FieldSyscall}},
		},
	}
	run := func(b *testing.B, pruning bool) {
		ix.SetSegmentPruning(pruning)
		defer ix.SetSegmentPruning(true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := st.Search(ctx, pruneBenchIndex, req)
			if err != nil {
				b.Fatalf("search: %v", err)
			}
			if resp.Total == 0 {
				b.Fatal("query matched nothing")
			}
		}
	}
	b.Run("pruned", func(b *testing.B) { run(b, true) })
	b.Run("full-scan", func(b *testing.B) { run(b, false) })
}

// BenchmarkSegmentCompaction measures the maintenance cost the tier adds:
// one op ingests four level-0 segments (timer stopped) and then merges them
// with a Compact pass (timer running) — the steady-state overhead a store
// under sustained ingest pays per compaction.
func BenchmarkSegmentCompaction(b *testing.B) {
	dir := b.TempDir()
	st, err := store.Open(
		store.WithDataDir(dir),
		store.WithFsyncPolicy(store.FsyncOff),
		store.WithSnapshotInterval(0),
		store.WithRetention(500_000*time.Hour),
		store.WithQueryCache(0),
		store.WithRollupInterval(0),
	)
	if err != nil {
		b.Fatalf("open: %v", err)
	}
	defer st.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for seg := 0; seg < 4; seg++ {
			if err := st.BulkEvents(ctx, pruneBenchIndex, pruneBenchEvents(i*4+seg)); err != nil {
				b.Fatalf("bulk: %v", err)
			}
			if err := st.Snapshot(); err != nil {
				b.Fatalf("snapshot: %v", err)
			}
		}
		b.StartTimer()
		if err := st.Compact(); err != nil {
			b.Fatalf("compact: %v", err)
		}
	}
	b.ReportMetric(float64(4*pruneBenchRowsPerSeg), "rows/op")
}
