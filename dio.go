// Package dio is a from-scratch Go reproduction of DIO — "Diagnosing
// applications' I/O behavior through system call observability" (Esteves,
// Macedo, Oliveira, Paulo; DSN 2023).
//
// DIO observes and diagnoses the I/O interactions between applications and
// in-kernel POSIX storage systems. This library reproduces the complete
// system on top of a simulated storage kernel:
//
//   - a tracer (eBPF-style programs on syscall tracepoints, kernel-side
//     filtering and enrichment, per-CPU ring buffers, an asynchronous
//     user-space pipeline),
//   - an analysis backend (an Elasticsearch-style document store with
//     queries, aggregations, bulk indexing, an HTTP API, and the file-path
//     correlation algorithm), and
//   - a visualizer (tables, histograms, and time-series dashboards).
//
// It also ships the paper's evaluation subjects — a Fluent Bit-style log
// forwarder with the v1.4.0 data-loss bug, a RocksDB-style LSM key-value
// store with db_bench clients, and strace/Sysdig-style comparator tracers —
// plus a harness that regenerates every table and figure of the paper's
// evaluation (see EXPERIMENTS.md).
//
// # Quick start
//
//	k := dio.NewKernel(dio.KernelConfig{})
//	backend := dio.NewStore()
//	tracer, err := dio.NewTracer(dio.TracerConfig{
//		SessionName:   "demo",
//		Backend:       backend,
//		AutoCorrelate: true,
//	})
//	if err != nil { ... }
//	tracer.Start(k)
//
//	task := k.NewProcess("app").NewTask("app")
//	fd, _ := task.Openat(dio.AtFDCWD, "/tmp/file", dio.OWronly|dio.OCreat, 0o644)
//	task.Write(fd, []byte("hello"))
//	task.Close(fd)
//
//	stats, _ := tracer.Stop()
//	table, _ := dio.AccessPatternTable(backend, tracer.Index(), tracer.Session())
//	fmt.Println(table)
package dio

import (
	"context"
	"io"

	"github.com/dsrhaslab/dio-go/internal/clock"
	"github.com/dsrhaslab/dio-go/internal/core"
	"github.com/dsrhaslab/dio-go/internal/diagnose"
	"github.com/dsrhaslab/dio-go/internal/ebpf"
	"github.com/dsrhaslab/dio-go/internal/event"
	"github.com/dsrhaslab/dio-go/internal/kernel"
	"github.com/dsrhaslab/dio-go/internal/replay"
	"github.com/dsrhaslab/dio-go/internal/store"
	"github.com/dsrhaslab/dio-go/internal/viz"
)

// Simulated-kernel types (the substrate applications run on).
type (
	// Kernel is the simulated POSIX storage kernel.
	Kernel = kernel.Kernel
	// KernelConfig configures a kernel instance.
	KernelConfig = kernel.Config
	// DiskConfig parametrizes the shared-bandwidth disk model.
	DiskConfig = kernel.DiskConfig
	// Process is a traced application process.
	Process = kernel.Process
	// Task is a kernel thread: the unit that issues syscalls.
	Task = kernel.Task
	// Syscall identifies one of the 42 supported storage syscalls.
	Syscall = kernel.Syscall
	// OpenFlags are open(2) flags.
	OpenFlags = kernel.OpenFlags
	// Errno is a POSIX error number.
	Errno = kernel.Errno
	// Stat mirrors struct stat.
	Stat = kernel.Stat
	// FileType classifies filesystem objects.
	FileType = kernel.FileType
)

// Tracer types (the paper's primary contribution).
type (
	// Tracer is one DIO tracing session.
	Tracer = core.Tracer
	// TracerConfig configures a session.
	TracerConfig = core.Config
	// TracerStats summarizes a session.
	TracerStats = core.Stats
	// Filter is the kernel-side filtering specification.
	Filter = ebpf.Filter
	// Event is one traced syscall with its enrichment.
	Event = event.Event
	// FileTag uniquely identifies an accessed file across inode reuse.
	FileTag = event.FileTag
)

// Backend types (the analysis pipeline).
type (
	// Store is the in-process document store.
	Store = store.Store
	// Backend abstracts in-process and remote stores.
	Backend = store.Backend
	// Client talks to a remote backend server.
	Client = store.Client
	// Server exposes a store over HTTP.
	Server = store.Server
	// Query is the search DSL.
	Query = store.Query
	// SearchRequest describes a search.
	SearchRequest = store.SearchRequest
	// Document is one indexed event.
	Document = store.Document
	// CorrelationResult summarizes a file-path correlation pass.
	CorrelationResult = store.CorrelationResult
)

// Visualizer types.
type (
	// Table is a tabular visualization.
	Table = viz.Table
	// TimeSeries is a multi-series chart over time.
	TimeSeries = viz.TimeSeries
	// Histogram is a bar chart.
	Histogram = viz.Histogram
	// Heatmap is a shaded matrix (rows x time buckets).
	Heatmap = viz.Heatmap
)

// Re-exported constants.
const (
	// AtFDCWD is the *at syscalls' "current directory" sentinel.
	AtFDCWD = kernel.AtFDCWD
	// Open flags.
	ORdonly    = kernel.ORdonly
	OWronly    = kernel.OWronly
	ORdwr      = kernel.ORdwr
	OCreat     = kernel.OCreat
	OExcl      = kernel.OExcl
	OTrunc     = kernel.OTrunc
	OAppend    = kernel.OAppend
	ODirectory = kernel.ODirectory
	// NumSyscalls is the size of the supported syscall set (Table I).
	NumSyscalls = kernel.NumSyscalls
)

// NewKernel creates a simulated kernel. A zero config selects a real-time
// clock and the default disk model.
func NewKernel(cfg KernelConfig) *Kernel { return kernel.New(cfg) }

// NewVirtualKernel creates a kernel on a deterministic virtual clock that
// advances one microsecond per observation — convenient for tests and for
// reproducible traces.
func NewVirtualKernel() *Kernel {
	return kernel.New(kernel.Config{
		Clock: clock.NewVirtualTicking(kernel.BaseTimestampNS, 1000),
	})
}

// NewTracer validates cfg and creates a tracing session.
func NewTracer(cfg TracerConfig) (*Tracer, error) { return core.NewTracer(cfg) }

// NewStore creates an in-process analysis backend.
func NewStore() *Store { return store.New() }

// NewServer wraps a store in an HTTP handler (the remote backend of §II-F).
func NewServer(st *Store) *Server { return store.NewServer(st) }

// NewClient creates a client for a remote backend at base URL.
func NewClient(base string) *Client { return store.NewClient(base) }

// AllSyscalls lists the 42 supported syscalls (Table I).
func AllSyscalls() []Syscall { return kernel.AllSyscalls() }

// SyscallByName resolves a syscall name ("openat") to its identifier.
func SyscallByName(name string) (Syscall, bool) { return kernel.SyscallByName(name) }

// AccessPatternTable renders the Fig. 2-style tabular view of a session.
func AccessPatternTable(b Backend, index, session string) (*Table, error) {
	return viz.AccessPatternTable(b, index, session)
}

// SyscallTimeline renders the Fig. 4-style per-thread syscall timeline.
func SyscallTimeline(b Backend, index, session string, intervalNS int64) (*TimeSeries, error) {
	return viz.SyscallTimeline(b, index, session, intervalNS)
}

// SyscallHistogram renders per-syscall counts of a session.
func SyscallHistogram(b Backend, index, session string) (*Histogram, error) {
	return viz.SyscallHistogram(b, index, session)
}

// HeatmapFromTimeSeries converts a multi-series chart into a heatmap with
// one normalized row per series.
func HeatmapFromTimeSeries(ts *TimeSeries) *Heatmap {
	return viz.HeatmapFromTimeSeries(ts)
}

// HTMLDashboard writes a session's dashboard (table + histogram +
// per-thread timeline) as one self-contained HTML page.
func HTMLDashboard(w io.Writer, b Backend, index, session string, intervalNS int64) error {
	return viz.HTMLDashboard(w, b, index, session, intervalNS)
}

// Custom analyses over traced events (the paper's flexibility claim, §IV).
// Context-first: every analysis streams events through cursor pages and
// honors cancellation.
type (
	// OffsetPattern summarizes a file's offset access pattern.
	OffsetPattern = diagnose.OffsetPattern
	// FileLoad ranks a file by I/O volume.
	FileLoad = diagnose.FileLoad
	// SessionDelta is one row of a cross-session comparison.
	SessionDelta = diagnose.SessionDelta
)

// FileOffsetPattern classifies a file's accesses as sequential, random, or
// mixed using the tracer's f_offset enrichment. Run correlation first so
// events carry file paths.
func FileOffsetPattern(ctx context.Context, b Backend, index, session, filePath string) (OffsetPattern, error) {
	return diagnose.FileOffsetPattern(ctx, b, index, session, filePath)
}

// HotFiles ranks a session's files by data volume.
func HotFiles(ctx context.Context, b Backend, index, session string, topN int) ([]FileLoad, error) {
	return diagnose.HotFiles(ctx, b, index, session, topN)
}

// CompareSessions contrasts two tracing executions stored in one backend
// (the post-mortem workflow of §II-F).
func CompareSessions(ctx context.Context, b Backend, index, sessionA, sessionB string) ([]SessionDelta, error) {
	return diagnose.CompareSessions(ctx, b, index, sessionA, sessionB)
}

// RenderComparison renders a session comparison as a table.
func RenderComparison(deltas []SessionDelta, sessionA, sessionB string) *Table {
	return diagnose.ComparisonTable(deltas, sessionA, sessionB)
}

// Automated diagnosis (the paper's §V direction: rule-based detection of
// the inefficient and erroneous behaviours the evaluation diagnoses). The
// engine runs a registry of detectors over one session, builds its syscall
// Directly-Follows-Graph, and scores the findings into a 0-100 health
// score; Diff classifies the deltas between two sessions.
type (
	// DiagnosisReport is the outcome of one engine run.
	DiagnosisReport = diagnose.Report
	// DiagnosisFinding is one detected anomaly.
	DiagnosisFinding = diagnose.Finding
	// DiagnosisParams tunes the engine and its detectors.
	DiagnosisParams = diagnose.Params
	// DiagnosisEngine runs a detector registry over sessions.
	DiagnosisEngine = diagnose.Engine
	// Detector is one registered diagnosis rule.
	Detector = diagnose.Detector
	// DetectorRegistry holds detectors in registration order.
	DetectorRegistry = diagnose.Registry
	// DFG is a session's syscall Directly-Follows-Graph.
	DFG = diagnose.DFG
	// DiffResult classifies the deltas between two sessions' diagnoses.
	DiffResult = diagnose.DiffResult
)

// NewDetectorRegistry creates an empty detector registry for custom rules.
func NewDetectorRegistry() *DetectorRegistry { return diagnose.NewRegistry() }

// NewDiagnosisEngine creates an engine over the built-in detectors (pass
// custom registries via diagnose.NewEngine directly).
func NewDiagnosisEngine() *DiagnosisEngine {
	return diagnose.NewEngine(diagnose.DefaultRegistry())
}

// Diagnose runs the built-in detectors over one session: stale-offset
// reads (the §III-B data-loss signature), DFG anti-patterns, costly access
// patterns, failing syscalls, and background-I/O contention (§III-C).
func Diagnose(ctx context.Context, b Backend, index, session string) (DiagnosisReport, error) {
	return NewDiagnosisEngine().Run(ctx, b, index, session)
}

// BuildDFG computes a session's syscall Directly-Follows-Graph.
func BuildDFG(ctx context.Context, b Backend, index, session string) (*DFG, error) {
	return diagnose.BuildDFG(ctx, b, index, session, 0)
}

// DiffSessions diagnoses two sessions and classifies every delta as a
// regression, improvement, or neutral change.
func DiffSessions(ctx context.Context, b Backend, index, sessionA, sessionB string) (DiffResult, error) {
	return NewDiagnosisEngine().DiffSessions(ctx, b, index, sessionA, sessionB, DiagnosisParams{})
}

// InstallDiagnosis mounts the /_diagnose, /_dfg, and /_diff endpoints on a
// backend server and returns the engine serving them.
func InstallDiagnosis(srv *Server) *DiagnosisEngine { return diagnose.Install(srv) }

// ReplayResult summarizes a trace replay.
type ReplayResult = replay.Result

// ReplaySession re-executes a traced session against a fresh kernel
// (Re-Animator-style), verifying that replayed return values match the
// trace. Data payloads are synthetic (traces record sizes, not bytes).
func ReplaySession(b Backend, index, session string, k *Kernel) (ReplayResult, error) {
	return replay.Session(b, index, session, k)
}
